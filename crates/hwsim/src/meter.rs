//! CPU-usage and phase-cost accounting.
//!
//! Figure 6 of the paper reports, per move request, both a *time
//! breakdown* across driver operations and the *CPU usage* each design
//! incurs. [`UsageMeter`] accumulates busy nanoseconds per execution
//! context, and [`PhaseBreakdown`] accumulates cost per driver phase
//! (Table 1 rows), letting the harness print the same columns.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Execution contexts that can consume CPU (paper §5.4's three paths plus
/// the application itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Context {
    /// Application code on its own behalf (compute, submit protocol).
    App,
    /// Kernel code run in the caller's process context (ioctl/mbind).
    Syscall,
    /// Interrupt handlers.
    Interrupt,
    /// The memif kernel worker thread.
    KernelThread,
    /// The DMA engine (not a CPU; tracked for utilization plots).
    DmaEngine,
}

impl Context {
    /// Whether time in this context occupies a CPU core.
    #[must_use]
    pub fn is_cpu(self) -> bool {
        !matches!(self, Context::DmaEngine)
    }
}

impl fmt::Display for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Context::App => "app",
            Context::Syscall => "syscall",
            Context::Interrupt => "irq",
            Context::KernelThread => "kthread",
            Context::DmaEngine => "dma",
        };
        f.write_str(s)
    }
}

/// Driver operations of Table 1 (plus interface costs), the columns of
/// Figure 6's breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Phase {
    /// Op 1 — locating physical page descriptors (gang or per-page).
    Prep,
    /// Op 2 — allocating destination pages and replacing PTEs.
    Remap,
    /// Op 3 — assembling the scatter-gather list and programming the
    /// DMA engine descriptors.
    DmaConfig,
    /// The byte copy itself (DMA transfer time, or CPU memcpy for the
    /// baseline).
    Copy,
    /// Op 4 — releasing old pages (CAS/final PTE + frees).
    Release,
    /// Op 5 — delivering the completion notification.
    Notify,
    /// User/kernel crossings and queue operations.
    Interface,
    /// Cache maintenance (baseline only — memif's engine is coherent).
    CacheMaint,
}

impl Phase {
    /// All phases in presentation order.
    pub const ALL: [Phase; 8] = [
        Phase::Prep,
        Phase::Remap,
        Phase::DmaConfig,
        Phase::Copy,
        Phase::Release,
        Phase::Notify,
        Phase::Interface,
        Phase::CacheMaint,
    ];
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Prep => "prep",
            Phase::Remap => "remap",
            Phase::DmaConfig => "dma-cfg",
            Phase::Copy => "copy",
            Phase::Release => "release",
            Phase::Notify => "notify",
            Phase::Interface => "interface",
            Phase::CacheMaint => "cache",
        };
        f.write_str(s)
    }
}

/// Accumulated cost per phase.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    costs: BTreeMap<Phase, SimDuration>,
}

impl PhaseBreakdown {
    /// An empty breakdown.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `cost` to `phase`.
    pub fn add(&mut self, phase: Phase, cost: SimDuration) {
        *self.costs.entry(phase).or_default() += cost;
    }

    /// Cost accumulated for `phase`.
    #[must_use]
    pub fn get(&self, phase: Phase) -> SimDuration {
        self.costs.get(&phase).copied().unwrap_or_default()
    }

    /// Sum over all phases.
    #[must_use]
    pub fn total(&self) -> SimDuration {
        self.costs.values().copied().sum()
    }

    /// Sum over all phases except the byte copy — the "management"
    /// overhead the paper's optimizations target.
    #[must_use]
    pub fn overhead(&self) -> SimDuration {
        self.total().saturating_sub(self.get(Phase::Copy))
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        for (phase, cost) in &other.costs {
            self.add(*phase, *cost);
        }
    }

    /// Iterates over `(phase, cost)` pairs in presentation order.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, SimDuration)> + '_ {
        Phase::ALL.iter().map(|p| (*p, self.get(*p)))
    }
}

/// Busy-time accumulation per execution context.
///
/// When the issue path is sharded, kernel-worker time is additionally
/// attributed per worker via [`UsageMeter::charge_worker`], so a harness
/// can report the per-shard CPU series next to the aggregate
/// [`Context::KernelThread`] line.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UsageMeter {
    busy: BTreeMap<Context, SimDuration>,
    workers: Vec<SimDuration>,
    /// CPU time spent compressing bytes bound for a compressed bank
    /// (also charged to its context in `busy`; this is attribution).
    compress: SimDuration,
    /// CPU time spent decompressing bytes leaving a compressed bank.
    decompress: SimDuration,
}

impl UsageMeter {
    /// An empty meter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `cost` of busy time to `ctx`.
    pub fn charge(&mut self, ctx: Context, cost: SimDuration) {
        *self.busy.entry(ctx).or_default() += cost;
    }

    /// Charges `cost` of [`Context::KernelThread`] busy time, attributing
    /// it to kernel worker `worker` as well as the aggregate context.
    pub fn charge_worker(&mut self, worker: usize, cost: SimDuration) {
        self.charge(Context::KernelThread, cost);
        self.attribute_worker(worker, cost);
    }

    /// Attributes `cost` to kernel worker `worker` **without** touching
    /// the aggregate contexts — for time that was already charged (e.g.
    /// inside the execution path) and only needs per-worker bookkeeping.
    pub fn attribute_worker(&mut self, worker: usize, cost: SimDuration) {
        if self.workers.len() <= worker {
            self.workers.resize(worker + 1, SimDuration::ZERO);
        }
        self.workers[worker] += cost;
    }

    /// Busy time accumulated by kernel worker `worker` (zero if it never
    /// ran).
    #[must_use]
    pub fn worker_busy(&self, worker: usize) -> SimDuration {
        self.workers.get(worker).copied().unwrap_or_default()
    }

    /// Per-worker kernel-thread busy times, indexed by worker (shard).
    /// Empty when no worker-attributed charge was recorded.
    #[must_use]
    pub fn workers(&self) -> &[SimDuration] {
        &self.workers
    }

    /// Charges `cost` of compression work to `ctx`, additionally
    /// attributing it to the compressed-tier codec. The time counts
    /// toward `ctx`'s busy total *and* shows up in
    /// [`UsageMeter::compress_busy`].
    pub fn charge_compress(&mut self, ctx: Context, cost: SimDuration) {
        self.charge(ctx, cost);
        self.compress += cost;
    }

    /// Charges `cost` of decompression work to `ctx` (see
    /// [`UsageMeter::charge_compress`]).
    pub fn charge_decompress(&mut self, ctx: Context, cost: SimDuration) {
        self.charge(ctx, cost);
        self.decompress += cost;
    }

    /// CPU time attributed to compressing bytes into compressed banks.
    #[must_use]
    pub fn compress_busy(&self) -> SimDuration {
        self.compress
    }

    /// CPU time attributed to decompressing bytes out of compressed banks.
    #[must_use]
    pub fn decompress_busy(&self) -> SimDuration {
        self.decompress
    }

    /// Busy time accumulated by `ctx`.
    #[must_use]
    pub fn busy(&self, ctx: Context) -> SimDuration {
        self.busy.get(&ctx).copied().unwrap_or_default()
    }

    /// Total CPU busy time (all contexts with [`Context::is_cpu`]).
    #[must_use]
    pub fn cpu_busy(&self) -> SimDuration {
        self.busy
            .iter()
            .filter(|(c, _)| c.is_cpu())
            .map(|(_, d)| *d)
            .sum()
    }

    /// CPU usage over a wall-clock window, as a fraction of one core
    /// (1.0 = one core fully busy). This is the line series in Figure 6.
    #[must_use]
    pub fn cpu_usage(&self, window: SimDuration) -> f64 {
        if window == SimDuration::ZERO {
            return 0.0;
        }
        self.cpu_busy().as_ns() as f64 / window.as_ns() as f64
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        self.busy.clear();
        self.workers.clear();
        self.compress = SimDuration::ZERO;
        self.decompress = SimDuration::ZERO;
    }
}

/// A pairing of a wall-clock interval with meters, convenient for
/// experiment harnesses.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Measurement {
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
    /// Busy time per context.
    pub meter: UsageMeter,
    /// Cost per driver phase.
    pub phases: PhaseBreakdown,
}

impl Measurement {
    /// Wall-clock span of the measurement.
    #[must_use]
    pub fn wall(&self) -> SimDuration {
        self.end.since(self.start)
    }

    /// CPU usage over the measurement window (fraction of one core).
    #[must_use]
    pub fn cpu_usage(&self) -> f64 {
        self.meter.cpu_usage(self.wall())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_accumulation() {
        let mut b = PhaseBreakdown::new();
        b.add(Phase::Prep, SimDuration::from_ns(100));
        b.add(Phase::Prep, SimDuration::from_ns(50));
        b.add(Phase::Copy, SimDuration::from_ns(1_000));
        assert_eq!(b.get(Phase::Prep).as_ns(), 150);
        assert_eq!(b.total().as_ns(), 1_150);
        assert_eq!(b.overhead().as_ns(), 150);
        assert_eq!(b.get(Phase::Release), SimDuration::ZERO);
    }

    #[test]
    fn phase_merge() {
        let mut a = PhaseBreakdown::new();
        a.add(Phase::Remap, SimDuration::from_ns(10));
        let mut b = PhaseBreakdown::new();
        b.add(Phase::Remap, SimDuration::from_ns(5));
        b.add(Phase::Notify, SimDuration::from_ns(1));
        a.merge(&b);
        assert_eq!(a.get(Phase::Remap).as_ns(), 15);
        assert_eq!(a.get(Phase::Notify).as_ns(), 1);
    }

    #[test]
    fn usage_fractions() {
        let mut m = UsageMeter::new();
        m.charge(Context::Syscall, SimDuration::from_ns(250));
        m.charge(Context::KernelThread, SimDuration::from_ns(250));
        m.charge(Context::DmaEngine, SimDuration::from_ns(9_999));
        assert_eq!(m.cpu_busy().as_ns(), 500, "DMA time is not CPU time");
        let usage = m.cpu_usage(SimDuration::from_ns(1_000));
        assert!((usage - 0.5).abs() < 1e-9);
        assert_eq!(m.cpu_usage(SimDuration::ZERO), 0.0);
    }

    #[test]
    fn measurement_window() {
        let mut meas = Measurement {
            start: SimTime::from_ns(1_000),
            end: SimTime::from_ns(3_000),
            ..Measurement::default()
        };
        meas.meter.charge(Context::App, SimDuration::from_ns(1_000));
        assert_eq!(meas.wall().as_ns(), 2_000);
        assert!((meas.cpu_usage() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn per_worker_attribution() {
        let mut m = UsageMeter::new();
        assert!(m.workers().is_empty());
        m.charge_worker(2, SimDuration::from_ns(100));
        m.charge_worker(0, SimDuration::from_ns(40));
        m.charge_worker(2, SimDuration::from_ns(1));
        assert_eq!(m.worker_busy(0).as_ns(), 40);
        assert_eq!(m.worker_busy(1), SimDuration::ZERO);
        assert_eq!(m.worker_busy(2).as_ns(), 101);
        assert_eq!(m.worker_busy(99), SimDuration::ZERO);
        // Worker charges flow into the aggregate kernel-thread context;
        // attribution-only does not (the time was charged elsewhere).
        assert_eq!(m.busy(Context::KernelThread).as_ns(), 141);
        m.attribute_worker(0, SimDuration::from_ns(9));
        assert_eq!(m.worker_busy(0).as_ns(), 49);
        assert_eq!(m.busy(Context::KernelThread).as_ns(), 141);
        m.reset();
        assert!(m.workers().is_empty());
    }

    #[test]
    fn codec_attribution() {
        let mut m = UsageMeter::new();
        assert_eq!(m.compress_busy(), SimDuration::ZERO);
        m.charge_compress(Context::KernelThread, SimDuration::from_ns(300));
        m.charge_decompress(Context::KernelThread, SimDuration::from_ns(100));
        m.charge(Context::KernelThread, SimDuration::from_ns(50));
        assert_eq!(m.compress_busy().as_ns(), 300);
        assert_eq!(m.decompress_busy().as_ns(), 100);
        // Codec time is real kernel-thread CPU time, not a side channel.
        assert_eq!(m.busy(Context::KernelThread).as_ns(), 450);
        m.reset();
        assert_eq!(m.compress_busy(), SimDuration::ZERO);
        assert_eq!(m.decompress_busy(), SimDuration::ZERO);
    }

    #[test]
    fn context_properties() {
        assert!(Context::App.is_cpu());
        assert!(!Context::DmaEngine.is_cpu());
        assert_eq!(Context::Interrupt.to_string(), "irq");
        assert_eq!(Phase::DmaConfig.to_string(), "dma-cfg");
    }
}
