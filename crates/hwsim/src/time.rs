//! Virtual time: nanosecond instants and durations on the simulated SoC.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated time, in nanoseconds since machine power-on.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// Machine power-on.
    pub const ZERO: SimTime = SimTime(0);

    /// The last representable instant (sentinel for min-folds).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// The instant `ns` nanoseconds after power-on.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since power-on.
    #[must_use]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Elapsed time since `earlier`, saturating at zero.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A span of `ns` nanoseconds.
    #[must_use]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// A span of `us` microseconds.
    #[must_use]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// A span of `ms` milliseconds.
    #[must_use]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// A span of fractional microseconds (rounds to nearest ns).
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative or not finite.
    #[must_use]
    pub fn from_us_f64(us: f64) -> Self {
        assert!(us.is_finite() && us >= 0.0, "invalid duration {us} µs");
        SimDuration((us * 1_000.0).round() as u64)
    }

    /// Length in nanoseconds.
    #[must_use]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Length in (fractional) microseconds.
    #[must_use]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Length in (fractional) milliseconds.
    #[must_use]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The time needed to move `bytes` at `gbps` gigabytes per second
    /// (10^9 bytes/s), rounded up to the next nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `gbps` is not strictly positive.
    #[must_use]
    pub fn for_bytes(bytes: u64, gbps: f64) -> Self {
        assert!(gbps > 0.0, "bandwidth must be positive");
        // gbps GB/s == gbps bytes/ns.
        SimDuration((bytes as f64 / gbps).ceil() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("negative duration"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.checked_sub(rhs.0).expect("negative duration");
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ns", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.as_us_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ns(100);
        let d = SimDuration::from_us(2);
        assert_eq!((t + d).as_ns(), 2_100);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(t + d), SimDuration::ZERO);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn bandwidth_duration() {
        // 6.2 GB/s over 4 KiB: ~660 ns.
        let d = SimDuration::for_bytes(4096, 6.2);
        assert_eq!(d.as_ns(), 661);
        // 24 GB/s over 1 MiB.
        let d = SimDuration::for_bytes(1 << 20, 24.0);
        assert_eq!(d.as_ns(), 43_691);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_ns(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_us(15).to_string(), "15.000µs");
        assert_eq!(SimDuration::from_ms(3).to_string(), "3.000ms");
    }

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_us_f64(1.5).as_ns(), 1_500);
        assert_eq!(SimDuration::from_us(1).as_us_f64(), 1.0);
        let sum: SimDuration = [SimDuration::from_ns(1), SimDuration::from_ns(2)]
            .into_iter()
            .sum();
        assert_eq!(sum.as_ns(), 3);
    }

    #[test]
    #[should_panic(expected = "negative duration")]
    fn negative_sub_panics() {
        let _ = SimTime::from_ns(1) - SimTime::from_ns(2);
    }
}
