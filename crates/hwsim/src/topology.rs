//! Memory topology: heterogeneous banks abstracted as pseudo-NUMA nodes.
//!
//! The paper's enabling abstraction (§1, §6.1): fast and slow memories
//! appear to the OS as separate NUMA nodes, letting mature facilities
//! (allocation policy, migration targets) apply unchanged. On KeyStone II
//! the CPUs and the 8 GB DDR3 share node 0 while the 6 MB on-chip SRAM is
//! node 1. This module also reproduces the bring-up quirk the authors had
//! to patch around: the SRAM bank's physical address is *lower* than any
//! DDR bank, so it must stay invisible to the boot allocator and only be
//! onlined after boot (§6.1).

use serde::{Deserialize, Serialize};

use crate::phys::PhysAddr;

/// A pseudo-NUMA node identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u16);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Memory technology class of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryKind {
    /// Capacity-limited, high-bandwidth memory (on-chip SRAM, eDRAM,
    /// die-stacked DRAM).
    Fast,
    /// Large-capacity commodity memory (DDR, NVRAM).
    Slow,
    /// Persistent, NVM-like memory: contents survive a simulated crash
    /// and writes cost more than reads (asymmetric bandwidth, modeled
    /// after "Emulating Hybrid Memory on NUMA Hardware").
    Nvm,
}

impl MemoryKind {
    /// Whether a bank of this kind retains its contents across a
    /// simulated crash. Only NVM-like banks are persistent; DRAM and
    /// SRAM banks lose their contents.
    #[must_use]
    pub fn is_persistent(self) -> bool {
        matches!(self, MemoryKind::Nvm)
    }
}

/// One memory bank exposed as a pseudo-NUMA node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryNode {
    /// Node id (CPUs live on the first `Slow` node, as on KeyStone II).
    pub id: NodeId,
    /// Human-readable name.
    pub name: String,
    /// Technology class.
    pub kind: MemoryKind,
    /// Physical base address of the bank.
    pub base: PhysAddr,
    /// Bank size in bytes.
    pub bytes: u64,
    /// Measured bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Whether the bank is visible to the boot memory allocator. The
    /// SRAM bank must not be, or the kernel "uses the capacity-limited
    /// SRAM for booting and then crashes due to out of memory" (§6.1).
    pub boot_visible: bool,
}

impl MemoryNode {
    /// One-past-the-end physical address.
    #[must_use]
    pub fn end(&self) -> PhysAddr {
        self.base.offset(self.bytes)
    }

    /// True if `addr` falls inside this bank.
    #[must_use]
    pub fn contains(&self, addr: PhysAddr) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// The machine's memory topology and its boot state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<MemoryNode>,
    cpu_count: u32,
    booted: bool,
}

impl Topology {
    /// The TI KeyStone II SoC of the paper's evaluation (Table 2):
    /// 4 Cortex-A15 cores; node 0 = 8 GB DDR3 @ 6.2 GB/s at a high
    /// physical base; node 1 = 6 MB MSMC SRAM @ 24 GB/s at a low base,
    /// hidden from the boot allocator.
    #[must_use]
    pub fn keystone_ii() -> Self {
        Topology {
            nodes: vec![
                MemoryNode {
                    id: NodeId(0),
                    name: "ddr3".to_owned(),
                    kind: MemoryKind::Slow,
                    base: PhysAddr::new(0x8_0000_0000),
                    bytes: 8 << 30,
                    bandwidth_gbps: 6.2,
                    boot_visible: true,
                },
                MemoryNode {
                    id: NodeId(1),
                    name: "msmc-sram".to_owned(),
                    kind: MemoryKind::Fast,
                    base: PhysAddr::new(0x0C00_0000),
                    bytes: 6 << 20,
                    bandwidth_gbps: 24.0,
                    boot_visible: false,
                },
            ],
            cpu_count: 4,
            booted: false,
        }
    }

    /// A custom topology.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty, ids are not `0..n`, or banks overlap.
    #[must_use]
    pub fn custom(nodes: Vec<MemoryNode>, cpu_count: u32) -> Self {
        assert!(!nodes.is_empty(), "topology needs at least one node");
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(n.id.0 as usize, i, "node ids must be dense and ordered");
            for m in &nodes[..i] {
                let disjoint = n.base >= m.end() || m.base >= n.end();
                assert!(disjoint, "banks {} and {} overlap", m.name, n.name);
            }
        }
        Topology {
            nodes,
            cpu_count,
            booted: false,
        }
    }

    /// Number of CPU cores.
    #[must_use]
    pub fn cpu_count(&self) -> u32 {
        self.cpu_count
    }

    /// Completes boot: banks with `boot_visible == false` become
    /// available (the paper's patched boot memory allocator, §6.1).
    pub fn complete_boot(&mut self) {
        self.booted = true;
    }

    /// Whether boot has completed.
    #[must_use]
    pub fn is_booted(&self) -> bool {
        self.booted
    }

    /// All nodes, regardless of visibility.
    #[must_use]
    pub fn all_nodes(&self) -> &[MemoryNode] {
        &self.nodes
    }

    /// Nodes currently usable for allocation: all of them after boot,
    /// only the boot-visible ones before.
    pub fn online_nodes(&self) -> impl Iterator<Item = &MemoryNode> {
        let booted = self.booted;
        self.nodes.iter().filter(move |n| booted || n.boot_visible)
    }

    /// Looks up a node by id, if online.
    #[must_use]
    pub fn node(&self, id: NodeId) -> Option<&MemoryNode> {
        self.online_nodes().find(|n| n.id == id)
    }

    /// The first online node of `kind`.
    #[must_use]
    pub fn node_of_kind(&self, kind: MemoryKind) -> Option<&MemoryNode> {
        self.online_nodes().find(|n| n.kind == kind)
    }

    /// Which node backs `addr`, if any.
    #[must_use]
    pub fn node_of_addr(&self, addr: PhysAddr) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.contains(addr)).map(|n| n.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keystone_shape_matches_table_2() {
        let topo = Topology::keystone_ii();
        assert_eq!(topo.cpu_count(), 4);
        let slow = topo.node_of_kind(MemoryKind::Slow).unwrap();
        assert_eq!(slow.bytes, 8 << 30);
        assert!((slow.bandwidth_gbps - 6.2).abs() < 1e-9);
        // SRAM sits below DDR physically — the boot hazard of §6.1.
        let nodes = topo.all_nodes();
        assert!(nodes[1].base < nodes[0].base);
    }

    #[test]
    fn sram_hidden_until_boot_completes() {
        let mut topo = Topology::keystone_ii();
        assert!(
            topo.node_of_kind(MemoryKind::Fast).is_none(),
            "SRAM hidden at boot"
        );
        assert_eq!(topo.online_nodes().count(), 1);
        assert!(topo.node(NodeId(1)).is_none());
        topo.complete_boot();
        assert!(topo.is_booted());
        let fast = topo.node_of_kind(MemoryKind::Fast).unwrap();
        assert_eq!(fast.bytes, 6 << 20);
        assert!((fast.bandwidth_gbps - 24.0).abs() < 1e-9);
        assert_eq!(topo.online_nodes().count(), 2);
    }

    #[test]
    fn addr_to_node_mapping() {
        let topo = Topology::keystone_ii();
        assert_eq!(
            topo.node_of_addr(PhysAddr::new(0x8_0000_1000)),
            Some(NodeId(0))
        );
        assert_eq!(
            topo.node_of_addr(PhysAddr::new(0x0C00_0000)),
            Some(NodeId(1))
        );
        assert_eq!(
            topo.node_of_addr(PhysAddr::new(0x0C00_0000 + (6 << 20))),
            None
        );
        assert_eq!(topo.node_of_addr(PhysAddr::new(0)), None);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_banks_rejected() {
        let n0 = MemoryNode {
            id: NodeId(0),
            name: "a".into(),
            kind: MemoryKind::Slow,
            base: PhysAddr::new(0),
            bytes: 4096,
            bandwidth_gbps: 1.0,
            boot_visible: true,
        };
        let n1 = MemoryNode {
            id: NodeId(1),
            name: "b".into(),
            base: PhysAddr::new(2048),
            ..n0.clone()
        };
        let _ = Topology::custom(vec![n0, n1], 1);
    }

    #[test]
    fn node_contains_bounds() {
        let topo = Topology::keystone_ii();
        let sram = &topo.all_nodes()[1];
        assert!(sram.contains(sram.base));
        assert!(!sram.contains(sram.end()));
    }
}
