//! Memory topology: heterogeneous banks abstracted as pseudo-NUMA nodes.
//!
//! The paper's enabling abstraction (§1, §6.1): fast and slow memories
//! appear to the OS as separate NUMA nodes, letting mature facilities
//! (allocation policy, migration targets) apply unchanged. On KeyStone II
//! the CPUs and the 8 GB DDR3 share node 0 while the 6 MB on-chip SRAM is
//! node 1. This module also reproduces the bring-up quirk the authors had
//! to patch around: the SRAM bank's physical address is *lower* than any
//! DDR bank, so it must stay invisible to the boot allocator and only be
//! onlined after boot (§6.1).
//!
//! Beyond the paper's two nodes, every bank carries a dense *tier rank*
//! ([`TierRank`]): rank 0 is the fastest tier and higher ranks are
//! successively colder. [`Topology::ranked`] builds an N-tier waterfall
//! ladder (SRAM → DRAM → NVM → compressed) for experiments that need a
//! deeper hierarchy than KeyStone II's.

use serde::{Deserialize, Serialize};

use crate::phys::PhysAddr;

/// A pseudo-NUMA node identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u16);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Position of a node in the ranked memory hierarchy. Rank 0 is the
/// fastest tier; larger ranks are colder (slower or compressed) tiers.
/// Ranks are dense per topology: every rank from 0 to the maximum has at
/// least one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TierRank(pub u16);

impl TierRank {
    /// The rank one step colder (down the waterfall).
    #[must_use]
    pub fn down(self) -> TierRank {
        TierRank(self.0 + 1)
    }

    /// The rank one step hotter (up the waterfall), saturating at 0.
    #[must_use]
    pub fn up(self) -> TierRank {
        TierRank(self.0.saturating_sub(1))
    }
}

impl std::fmt::Display for TierRank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tier{}", self.0)
    }
}

/// Memory technology class of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryKind {
    /// Capacity-limited, high-bandwidth memory (on-chip SRAM, eDRAM,
    /// die-stacked DRAM).
    Fast,
    /// Large-capacity commodity memory (DDR, NVRAM).
    Slow,
    /// Persistent, NVM-like memory: contents survive a simulated crash
    /// and writes cost more than reads (asymmetric bandwidth, modeled
    /// after "Emulating Hybrid Memory on NUMA Hardware").
    Nvm,
    /// Compressed in-memory cold storage (zram/zswap-like). Bytes moved
    /// into such a bank charge costed CPU compression work, and bytes
    /// moved out charge decompression, analogous to the costed CPU-copy
    /// degradation path.
    Compressed,
}

impl MemoryKind {
    /// Whether a bank of this kind retains its contents across a
    /// simulated crash. Only NVM-like banks are persistent; DRAM, SRAM,
    /// and compressed banks lose their contents.
    #[must_use]
    pub fn is_persistent(self) -> bool {
        matches!(self, MemoryKind::Nvm)
    }

    /// Whether reads/writes of a bank of this kind pass through the CPU
    /// compression codec.
    #[must_use]
    pub fn is_compressed(self) -> bool {
        matches!(self, MemoryKind::Compressed)
    }

    /// Lower-case label used in JSON and tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MemoryKind::Fast => "fast",
            MemoryKind::Slow => "slow",
            MemoryKind::Nvm => "nvm",
            MemoryKind::Compressed => "compressed",
        }
    }
}

/// One memory bank exposed as a pseudo-NUMA node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryNode {
    /// Node id (CPUs live on the first `Slow` node, as on KeyStone II).
    pub id: NodeId,
    /// Human-readable name.
    pub name: String,
    /// Technology class.
    pub kind: MemoryKind,
    /// Rank in the waterfall hierarchy (0 = fastest).
    pub tier: TierRank,
    /// Physical base address of the bank.
    pub base: PhysAddr,
    /// Bank size in bytes.
    pub bytes: u64,
    /// Measured bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Whether the bank is visible to the boot memory allocator. The
    /// SRAM bank must not be, or the kernel "uses the capacity-limited
    /// SRAM for booting and then crashes due to out of memory" (§6.1).
    pub boot_visible: bool,
}

impl MemoryNode {
    /// One-past-the-end physical address.
    #[must_use]
    pub fn end(&self) -> PhysAddr {
        self.base.offset(self.bytes)
    }

    /// True if `addr` falls inside this bank.
    #[must_use]
    pub fn contains(&self, addr: PhysAddr) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// Why a custom topology was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The node list was empty.
    Empty,
    /// Node ids were not dense and ordered `0..n`.
    NonDenseIds {
        /// Position in the node list.
        index: usize,
        /// The id found there.
        found: NodeId,
    },
    /// Two banks' physical address ranges overlap.
    Overlap {
        /// Name of the earlier bank.
        first: String,
        /// Name of the later bank.
        second: String,
    },
    /// Tier ranks were not dense: some rank below the maximum has no bank.
    NonDenseTiers {
        /// The missing rank.
        missing: TierRank,
    },
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::Empty => write!(f, "topology needs at least one node"),
            TopologyError::NonDenseIds { index, found } => {
                write!(
                    f,
                    "node ids must be dense and ordered: position {index} holds {found}"
                )
            }
            TopologyError::Overlap { first, second } => {
                write!(f, "banks {first} and {second} overlap")
            }
            TopologyError::NonDenseTiers { missing } => {
                write!(f, "tier ranks must be dense: no bank has rank {missing}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// The machine's memory topology and its boot state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<MemoryNode>,
    cpu_count: u32,
    booted: bool,
}

impl Topology {
    /// The TI KeyStone II SoC of the paper's evaluation (Table 2):
    /// 4 Cortex-A15 cores; node 0 = 8 GB DDR3 @ 6.2 GB/s at a high
    /// physical base; node 1 = 6 MB MSMC SRAM @ 24 GB/s at a low base,
    /// hidden from the boot allocator. The SRAM is tier 0 (fastest), the
    /// DDR tier 1.
    #[must_use]
    pub fn keystone_ii() -> Self {
        Topology {
            nodes: vec![
                MemoryNode {
                    id: NodeId(0),
                    name: "ddr3".to_owned(),
                    kind: MemoryKind::Slow,
                    tier: TierRank(1),
                    base: PhysAddr::new(0x8_0000_0000),
                    bytes: 8 << 30,
                    bandwidth_gbps: 6.2,
                    boot_visible: true,
                },
                MemoryNode {
                    id: NodeId(1),
                    name: "msmc-sram".to_owned(),
                    kind: MemoryKind::Fast,
                    tier: TierRank(0),
                    base: PhysAddr::new(0x0C00_0000),
                    bytes: 6 << 20,
                    bandwidth_gbps: 24.0,
                    boot_visible: false,
                },
            ],
            cpu_count: 4,
            booted: false,
        }
    }

    /// An N-tier waterfall ladder for hierarchy experiments, scaled so
    /// that modest pools exert real capacity pressure on every tier:
    ///
    /// | rank | bank | kind | size | GB/s |
    /// |------|------|------|------|------|
    /// | 0 | `sram` | `Fast` | 6 MiB | 24.0 |
    /// | 1 | `dram` | `Slow` | 24 MiB | 6.2 |
    /// | 2 | `nvm` | `Nvm` | 512 MiB | 6.2 |
    /// | 3 | `zram` | `Compressed` | 1 GiB | 6.2 |
    ///
    /// `tiers == 2` keeps the KeyStone shape (DRAM node 0 boot-visible,
    /// SRAM node 1 hidden) but with the scaled-down DRAM bank;
    /// `tiers == 1` is just the DRAM node at rank 0. The CPUs and the
    /// boot allocator always live on the DRAM node, which is node 0;
    /// deeper banks take ids 2, 3 in rank order.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= tiers && tiers <= 4`.
    #[must_use]
    pub fn ranked(tiers: usize) -> Self {
        assert!(
            (1..=4).contains(&tiers),
            "ranked topology supports 1..=4 tiers, got {tiers}"
        );
        let dram_rank = u16::from(tiers > 1);
        let mut nodes = vec![MemoryNode {
            id: NodeId(0),
            name: "dram".to_owned(),
            kind: MemoryKind::Slow,
            tier: TierRank(dram_rank),
            base: PhysAddr::new(0x8_0000_0000),
            bytes: 24 << 20,
            bandwidth_gbps: 6.2,
            boot_visible: true,
        }];
        if tiers > 1 {
            nodes.push(MemoryNode {
                id: NodeId(1),
                name: "sram".to_owned(),
                kind: MemoryKind::Fast,
                tier: TierRank(0),
                base: PhysAddr::new(0x0C00_0000),
                bytes: 6 << 20,
                bandwidth_gbps: 24.0,
                boot_visible: false,
            });
        }
        if tiers > 2 {
            nodes.push(MemoryNode {
                id: NodeId(2),
                name: "nvm".to_owned(),
                kind: MemoryKind::Nvm,
                tier: TierRank(2),
                base: PhysAddr::new(0x10_0000_0000),
                bytes: 512 << 20,
                bandwidth_gbps: 6.2,
                boot_visible: false,
            });
        }
        if tiers > 3 {
            nodes.push(MemoryNode {
                id: NodeId(3),
                name: "zram".to_owned(),
                kind: MemoryKind::Compressed,
                tier: TierRank(3),
                base: PhysAddr::new(0x20_0000_0000),
                bytes: 1 << 30,
                bandwidth_gbps: 6.2,
                boot_visible: false,
            });
        }
        Topology::must_custom(nodes, 4)
    }

    /// A custom topology.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] if `nodes` is empty, ids are not
    /// dense/ordered `0..n`, banks overlap, or tier ranks are not dense.
    pub fn custom(nodes: Vec<MemoryNode>, cpu_count: u32) -> Result<Self, TopologyError> {
        if nodes.is_empty() {
            return Err(TopologyError::Empty);
        }
        for (i, n) in nodes.iter().enumerate() {
            if n.id.0 as usize != i {
                return Err(TopologyError::NonDenseIds {
                    index: i,
                    found: n.id,
                });
            }
            for m in &nodes[..i] {
                let disjoint = n.base >= m.end() || m.base >= n.end();
                if !disjoint {
                    return Err(TopologyError::Overlap {
                        first: m.name.clone(),
                        second: n.name.clone(),
                    });
                }
            }
        }
        let max_rank = nodes.iter().map(|n| n.tier.0).max().unwrap_or(0);
        for rank in 0..=max_rank {
            if !nodes.iter().any(|n| n.tier.0 == rank) {
                return Err(TopologyError::NonDenseTiers {
                    missing: TierRank(rank),
                });
            }
        }
        Ok(Topology {
            nodes,
            cpu_count,
            booted: false,
        })
    }

    /// [`Topology::custom`], panicking on invalid input — the ergonomic
    /// form for tests and fixed benchmark machines.
    ///
    /// # Panics
    ///
    /// Panics with the [`TopologyError`] message on invalid input.
    #[must_use]
    pub fn must_custom(nodes: Vec<MemoryNode>, cpu_count: u32) -> Self {
        match Topology::custom(nodes, cpu_count) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Number of CPU cores.
    #[must_use]
    pub fn cpu_count(&self) -> u32 {
        self.cpu_count
    }

    /// Completes boot: banks with `boot_visible == false` become
    /// available (the paper's patched boot memory allocator, §6.1).
    pub fn complete_boot(&mut self) {
        self.booted = true;
    }

    /// Whether boot has completed.
    #[must_use]
    pub fn is_booted(&self) -> bool {
        self.booted
    }

    /// All nodes, regardless of visibility.
    #[must_use]
    pub fn all_nodes(&self) -> &[MemoryNode] {
        &self.nodes
    }

    /// Nodes currently usable for allocation: all of them after boot,
    /// only the boot-visible ones before.
    pub fn online_nodes(&self) -> impl Iterator<Item = &MemoryNode> {
        let booted = self.booted;
        self.nodes.iter().filter(move |n| booted || n.boot_visible)
    }

    /// Looks up a node by id, if online.
    #[must_use]
    pub fn node(&self, id: NodeId) -> Option<&MemoryNode> {
        self.online_nodes().find(|n| n.id == id)
    }

    /// The first online node of `kind`.
    #[must_use]
    pub fn node_of_kind(&self, kind: MemoryKind) -> Option<&MemoryNode> {
        self.online_nodes().find(|n| n.kind == kind)
    }

    /// Which node backs `addr`, if any.
    #[must_use]
    pub fn node_of_addr(&self, addr: PhysAddr) -> Option<NodeId> {
        self.nodes.iter().find(|n| n.contains(addr)).map(|n| n.id)
    }

    /// The coldest (largest) tier rank in the hierarchy.
    #[must_use]
    pub fn max_tier(&self) -> TierRank {
        TierRank(self.nodes.iter().map(|n| n.tier.0).max().unwrap_or(0))
    }

    /// Number of tiers (ranks are dense, so this is `max_tier + 1`).
    #[must_use]
    pub fn tier_count(&self) -> usize {
        self.max_tier().0 as usize + 1
    }

    /// All nodes of tier `rank`, in node-id order.
    pub fn nodes_of_tier(&self, rank: TierRank) -> impl Iterator<Item = &MemoryNode> {
        self.nodes.iter().filter(move |n| n.tier == rank)
    }

    /// The first node of tier `rank`, if any.
    #[must_use]
    pub fn node_of_tier(&self, rank: TierRank) -> Option<&MemoryNode> {
        self.nodes_of_tier(rank).next()
    }

    /// The tier rank of node `id`, if the node exists.
    #[must_use]
    pub fn tier_of(&self, id: NodeId) -> Option<TierRank> {
        self.nodes.iter().find(|n| n.id == id).map(|n| n.tier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keystone_shape_matches_table_2() {
        let topo = Topology::keystone_ii();
        assert_eq!(topo.cpu_count(), 4);
        let slow = topo.node_of_kind(MemoryKind::Slow).unwrap();
        assert_eq!(slow.bytes, 8 << 30);
        assert!((slow.bandwidth_gbps - 6.2).abs() < 1e-9);
        // SRAM sits below DDR physically — the boot hazard of §6.1.
        let nodes = topo.all_nodes();
        assert!(nodes[1].base < nodes[0].base);
        // SRAM is the top of the waterfall, DDR one rank down.
        assert_eq!(nodes[1].tier, TierRank(0));
        assert_eq!(nodes[0].tier, TierRank(1));
        assert_eq!(topo.tier_count(), 2);
    }

    #[test]
    fn sram_hidden_until_boot_completes() {
        let mut topo = Topology::keystone_ii();
        assert!(
            topo.node_of_kind(MemoryKind::Fast).is_none(),
            "SRAM hidden at boot"
        );
        assert_eq!(topo.online_nodes().count(), 1);
        assert!(topo.node(NodeId(1)).is_none());
        topo.complete_boot();
        assert!(topo.is_booted());
        let fast = topo.node_of_kind(MemoryKind::Fast).unwrap();
        assert_eq!(fast.bytes, 6 << 20);
        assert!((fast.bandwidth_gbps - 24.0).abs() < 1e-9);
        assert_eq!(topo.online_nodes().count(), 2);
    }

    #[test]
    fn addr_to_node_mapping() {
        let topo = Topology::keystone_ii();
        assert_eq!(
            topo.node_of_addr(PhysAddr::new(0x8_0000_1000)),
            Some(NodeId(0))
        );
        assert_eq!(
            topo.node_of_addr(PhysAddr::new(0x0C00_0000)),
            Some(NodeId(1))
        );
        assert_eq!(
            topo.node_of_addr(PhysAddr::new(0x0C00_0000 + (6 << 20))),
            None
        );
        assert_eq!(topo.node_of_addr(PhysAddr::new(0)), None);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_banks_rejected() {
        let n0 = MemoryNode {
            id: NodeId(0),
            name: "a".into(),
            kind: MemoryKind::Slow,
            tier: TierRank(0),
            base: PhysAddr::new(0),
            bytes: 4096,
            bandwidth_gbps: 1.0,
            boot_visible: true,
        };
        let n1 = MemoryNode {
            id: NodeId(1),
            name: "b".into(),
            base: PhysAddr::new(2048),
            ..n0.clone()
        };
        let _ = Topology::must_custom(vec![n0, n1], 1);
    }

    #[test]
    fn custom_reports_structured_errors() {
        assert_eq!(Topology::custom(vec![], 1), Err(TopologyError::Empty));
        let mk = |id: u16, tier: u16, base: u64| MemoryNode {
            id: NodeId(id),
            name: format!("bank{id}"),
            kind: MemoryKind::Slow,
            tier: TierRank(tier),
            base: PhysAddr::new(base),
            bytes: 4096,
            bandwidth_gbps: 1.0,
            boot_visible: true,
        };
        assert_eq!(
            Topology::custom(vec![mk(1, 0, 0)], 1),
            Err(TopologyError::NonDenseIds {
                index: 0,
                found: NodeId(1)
            })
        );
        let err = Topology::custom(vec![mk(0, 0, 0), mk(1, 1, 1024)], 1).unwrap_err();
        assert!(matches!(err, TopologyError::Overlap { .. }));
        assert!(err.to_string().contains("overlap"));
        assert_eq!(
            Topology::custom(vec![mk(0, 0, 0), mk(1, 2, 8192)], 1),
            Err(TopologyError::NonDenseTiers {
                missing: TierRank(1)
            })
        );
        // Two banks sharing a tier is fine.
        assert!(Topology::custom(vec![mk(0, 0, 0), mk(1, 0, 8192)], 1).is_ok());
    }

    #[test]
    fn ranked_ladder_shape() {
        let t4 = Topology::ranked(4);
        assert_eq!(t4.tier_count(), 4);
        assert_eq!(t4.node_of_tier(TierRank(0)).unwrap().name, "sram");
        assert_eq!(t4.node_of_tier(TierRank(1)).unwrap().name, "dram");
        assert_eq!(t4.node_of_tier(TierRank(2)).unwrap().kind, MemoryKind::Nvm);
        let zram = t4.node_of_tier(TierRank(3)).unwrap();
        assert_eq!(zram.kind, MemoryKind::Compressed);
        assert!(zram.kind.is_compressed());
        assert!(!zram.kind.is_persistent());
        assert_eq!(zram.kind.label(), "compressed");
        // Only DRAM is boot-visible; CPUs live there (node 0).
        assert_eq!(t4.all_nodes().iter().filter(|n| n.boot_visible).count(), 1);
        assert_eq!(t4.tier_of(NodeId(0)), Some(TierRank(1)));
        assert_eq!(t4.tier_of(NodeId(3)), Some(TierRank(3)));
        assert_eq!(t4.tier_of(NodeId(9)), None);
        let t2 = Topology::ranked(2);
        assert_eq!(t2.tier_count(), 2);
        assert_eq!(t2.node_of_tier(TierRank(0)).unwrap().kind, MemoryKind::Fast);
        let t1 = Topology::ranked(1);
        assert_eq!(t1.tier_count(), 1);
        assert_eq!(t1.max_tier(), TierRank(0));
    }

    #[test]
    fn node_contains_bounds() {
        let topo = Topology::keystone_ii();
        let sram = &topo.all_nodes()[1];
        assert!(sram.contains(sram.base));
        assert!(!sram.contains(sram.end()));
    }
}
