//! Deterministic, seedable hardware fault injection.
//!
//! The simulated EDMA3 engine and the bandwidth fabric are, by default,
//! perfectly reliable — every launched transfer completes and every
//! interrupt arrives. Real hardware is not: completion interrupts get
//! lost or coalesced late, transfers error out mid-flight (ECC, bus
//! aborts), the PaRAM descriptor pool is transiently hogged by other
//! tenants, and a memory node's effective bandwidth sags under thermal
//! or refresh pressure. This module models all four as a *fault plan*:
//! a pure function of a seed and the engine's call sequence, so a chaos
//! run is exactly reproducible from its seed.
//!
//! Injection is strictly opt-in. No [`FaultInjector`] installed means no
//! extra events, no RNG draws, and byte-identical simulation output —
//! the zero-cost default the figure replications rely on.

use crate::time::{SimDuration, SimTime};
use crate::topology::NodeId;

/// A deterministic xorshift-free PRNG (SplitMix64): tiny state, good
/// avalanche, and — crucially — identical streams on every platform.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, bound)`; returns 0 for a zero bound.
    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// A scheduled bandwidth brownout on one memory node: between `start`
/// and `start + duration` the node's bus capacity is multiplied by
/// `factor` (e.g. `0.25` = quarter speed).
#[derive(Debug, Clone, PartialEq)]
pub struct Brownout {
    /// The affected memory node.
    pub node: NodeId,
    /// When the brownout begins.
    pub start: SimTime,
    /// How long it lasts.
    pub duration: SimDuration,
    /// Capacity multiplier during the window, in `(0, 1]`.
    pub factor: f64,
}

/// A point in a move's lifecycle where a simulated crash may strike.
///
/// Crash points pin the spots where the move pipeline transitions
/// between journal milestones, so each one exercises a distinct
/// recovery classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Right after a request is enqueued, before the kernel thread
    /// issues it (the request is *not yet journaled*).
    Submit,
    /// Right after the DMA transfer is launched (journaled, no bytes
    /// copied yet — recovery must roll back).
    PostLaunch,
    /// Mid-way through applying a batched chain's completion: the
    /// leader's bytes are in place, the members' are not.
    MidChain,
    /// On entry to a retire site, before the request is released
    /// (bytes copied, journal milestone `CopyDone` — recovery must
    /// roll forward).
    PreRetire,
    /// Right after a retire site sealed the journal record (recovery
    /// must treat the request as already terminal).
    PostRetire,
}

impl CrashPoint {
    /// Stable lowercase name (trace headers, CLI flags).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CrashPoint::Submit => "submit",
            CrashPoint::PostLaunch => "post-launch",
            CrashPoint::MidChain => "mid-chain",
            CrashPoint::PreRetire => "pre-retire",
            CrashPoint::PostRetire => "post-retire",
        }
    }

    /// Parses the stable name produced by [`CrashPoint::as_str`].
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "submit" => Some(CrashPoint::Submit),
            "post-launch" => Some(CrashPoint::PostLaunch),
            "mid-chain" => Some(CrashPoint::MidChain),
            "pre-retire" => Some(CrashPoint::PreRetire),
            "post-retire" => Some(CrashPoint::PostRetire),
            _ => None,
        }
    }

    /// All crash points, in lifecycle order.
    pub const ALL: [CrashPoint; 5] = [
        CrashPoint::Submit,
        CrashPoint::PostLaunch,
        CrashPoint::MidChain,
        CrashPoint::PreRetire,
        CrashPoint::PostRetire,
    ];
}

/// A deterministic crash schedule: the world halts the `nth` time
/// (1-based) execution passes `point`. Counting is per-point and purely
/// sequential — no RNG draws — so adding a crash plan never perturbs
/// the existing fault stream of a chaos run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Which lifecycle point to crash at.
    pub point: CrashPoint,
    /// Crash on the nth crossing of that point (1-based; 0 is clamped
    /// to 1).
    pub nth: u64,
}

impl CrashPlan {
    /// Crash the `nth` time execution reaches `point`.
    #[must_use]
    pub fn at(point: CrashPoint, nth: u64) -> Self {
        CrashPlan {
            point,
            nth: nth.max(1),
        }
    }
}

/// The complete fault configuration for one chaos run.
///
/// All rates are per-event probabilities in `[0, 1]`. The default plan
/// injects nothing; [`FaultPlan::is_noop`] tells installers whether they
/// can skip installation entirely.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the deterministic fault stream.
    pub seed: u64,
    /// Probability a launched transfer errors out mid-flight (the engine
    /// raises an error interrupt after a uniformly random prefix of the
    /// transfer's bytes).
    pub dma_error_rate: f64,
    /// Probability a transfer's completion interrupt is silently lost
    /// (the bytes arrive, the driver is never told).
    pub drop_rate: f64,
    /// Probability a completion interrupt is delivered late.
    pub delay_rate: f64,
    /// Upper bound of the injected interrupt delay (uniform in
    /// `(0, max_delay]`).
    pub max_delay: SimDuration,
    /// Probability a descriptor-pool allocation hits a transient
    /// exhaustion burst (other tenants hogging the PaRAM).
    pub desc_exhaust_rate: f64,
    /// Consecutive allocations that fail once a burst starts.
    pub desc_exhaust_burst: u32,
    /// Scheduled bandwidth brownouts.
    pub brownouts: Vec<Brownout>,
    /// Optional deterministic crash point: halt the world at the nth
    /// crossing of a move-lifecycle point.
    pub crash: Option<CrashPlan>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            dma_error_rate: 0.0,
            drop_rate: 0.0,
            delay_rate: 0.0,
            max_delay: SimDuration::from_us(500),
            desc_exhaust_rate: 0.0,
            desc_exhaust_burst: 4,
            brownouts: Vec::new(),
            crash: None,
        }
    }
}

impl FaultPlan {
    /// An empty (inject-nothing) plan with the given seed, ready for
    /// struct-update customization.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// A plan that injects only DMA mid-flight errors at `rate`.
    #[must_use]
    pub fn dma_errors(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            dma_error_rate: rate,
            ..FaultPlan::default()
        }
    }

    /// True if the plan can never inject anything.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.dma_error_rate <= 0.0
            && self.drop_rate <= 0.0
            && self.delay_rate <= 0.0
            && self.desc_exhaust_rate <= 0.0
            && self.brownouts.is_empty()
            && self.crash.is_none()
    }

    /// A plan whose only effect is a deterministic crash at `point`'s
    /// `nth` crossing.
    #[must_use]
    pub fn crash_at(point: CrashPoint, nth: u64) -> Self {
        FaultPlan {
            crash: Some(CrashPlan::at(point, nth)),
            ..FaultPlan::default()
        }
    }
}

/// What the injector decided for one launched transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferFault {
    /// The transfer proceeds normally.
    None,
    /// The engine errors out after `bytes_done` of the payload.
    Error {
        /// Bytes transferred before the error interrupt.
        bytes_done: u64,
    },
    /// The transfer completes but its completion interrupt is lost.
    DropCompletion,
    /// The completion interrupt is delivered `delay` late.
    DelayCompletion(SimDuration),
}

/// Counters of injected faults (diagnostics and experiment reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transfers forced to error mid-flight.
    pub dma_errors: u64,
    /// Completion interrupts dropped.
    pub dropped_completions: u64,
    /// Completion interrupts delayed.
    pub delayed_completions: u64,
    /// Descriptor allocations failed by transient exhaustion.
    pub desc_exhaustions: u64,
}

/// The stateful injector: owns the seeded RNG and rolls each fault
/// decision in a fixed order, so the fault stream is a deterministic
/// function of `(seed, sequence of engine operations)`.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    exhaust_left: u32,
    stats: FaultStats,
    crash_crossings: u64,
    crash_fired: bool,
}

impl FaultInjector {
    /// An injector executing `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        let rng = SplitMix64::new(plan.seed);
        FaultInjector {
            plan,
            rng,
            exhaust_left: 0,
            stats: FaultStats::default(),
            crash_crossings: 0,
            crash_fired: false,
        }
    }

    /// The plan being executed.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injection counters so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Rolls the fate of a transfer of `bytes` about to launch. Draws
    /// are made in a fixed order (error, drop, delay) regardless of the
    /// configured rates, keeping downstream decisions aligned across
    /// plans that differ in one rate.
    pub fn roll_transfer(&mut self, bytes: u64) -> TransferFault {
        let error = self.rng.next_f64() < self.plan.dma_error_rate;
        let drop = self.rng.next_f64() < self.plan.drop_rate;
        let delay = self.rng.next_f64() < self.plan.delay_rate;
        if error {
            self.stats.dma_errors += 1;
            // Fail after a strict prefix: at least 0, less than all.
            let bytes_done = self.rng.below(bytes.max(1));
            return TransferFault::Error { bytes_done };
        }
        if drop {
            self.stats.dropped_completions += 1;
            return TransferFault::DropCompletion;
        }
        if delay {
            self.stats.delayed_completions += 1;
            let ns = 1 + self.rng.below(self.plan.max_delay.as_ns().max(1));
            return TransferFault::DelayCompletion(SimDuration::from_ns(ns));
        }
        TransferFault::None
    }

    /// Rolls whether the world crashes at this crossing of `point`.
    ///
    /// Purely counter-based — no RNG draws — so installing a crash plan
    /// leaves every other fault decision of the run byte-identical.
    /// Fires at most once per injector.
    pub fn roll_crash(&mut self, point: CrashPoint) -> bool {
        let Some(crash) = self.plan.crash else {
            return false;
        };
        if self.crash_fired || crash.point != point {
            return false;
        }
        self.crash_crossings += 1;
        if self.crash_crossings >= crash.nth {
            self.crash_fired = true;
            return true;
        }
        false
    }

    /// Rolls whether a descriptor-pool allocation transiently fails.
    /// Once a burst begins, the next `desc_exhaust_burst - 1`
    /// allocations fail too (a tenant hogging the PaRAM does not vanish
    /// between two back-to-back configure attempts).
    pub fn roll_configure(&mut self) -> bool {
        if self.exhaust_left > 0 {
            self.exhaust_left -= 1;
            self.stats.desc_exhaustions += 1;
            return true;
        }
        if self.rng.next_f64() < self.plan.desc_exhaust_rate {
            self.exhaust_left = self.plan.desc_exhaust_burst.saturating_sub(1);
            self.stats.desc_exhaustions += 1;
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let plan = FaultPlan {
            seed: 42,
            dma_error_rate: 0.3,
            drop_rate: 0.2,
            delay_rate: 0.2,
            desc_exhaust_rate: 0.1,
            ..FaultPlan::default()
        };
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan);
        for i in 0..256 {
            assert_eq!(
                a.roll_transfer(4096 * (i + 1)),
                b.roll_transfer(4096 * (i + 1))
            );
            assert_eq!(a.roll_configure(), b.roll_configure());
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let mut inj = FaultInjector::new(FaultPlan {
            seed: 7,
            ..FaultPlan::default()
        });
        for _ in 0..100 {
            assert_eq!(inj.roll_transfer(4096), TransferFault::None);
            assert!(!inj.roll_configure());
        }
        assert_eq!(inj.stats(), FaultStats::default());
        assert!(inj.plan().is_noop());
    }

    #[test]
    fn error_prefix_is_a_strict_prefix() {
        let mut inj = FaultInjector::new(FaultPlan::dma_errors(3, 1.0));
        for _ in 0..100 {
            match inj.roll_transfer(8192) {
                TransferFault::Error { bytes_done } => assert!(bytes_done < 8192),
                other => panic!("expected an error, got {other:?}"),
            }
        }
        assert_eq!(inj.stats().dma_errors, 100);
    }

    #[test]
    fn exhaustion_comes_in_bursts() {
        let mut inj = FaultInjector::new(FaultPlan {
            seed: 11,
            desc_exhaust_rate: 0.05,
            desc_exhaust_burst: 3,
            ..FaultPlan::default()
        });
        // Every exhaustion run must be at least `burst` long.
        let rolls: Vec<bool> = (0..2000).map(|_| inj.roll_configure()).collect();
        let mut run = 0u32;
        let mut saw_burst = false;
        for &fail in &rolls {
            if fail {
                run += 1;
            } else {
                if run > 0 {
                    assert!(run >= 3, "burst shorter than configured: {run}");
                    saw_burst = true;
                }
                run = 0;
            }
        }
        assert!(saw_burst, "rate 0.05 over 2000 rolls should burst");
    }

    #[test]
    fn crash_plan_is_counter_based_and_fires_once() {
        let mut inj = FaultInjector::new(FaultPlan::crash_at(CrashPoint::PostLaunch, 3));
        assert!(!inj.plan().is_noop());
        // Other points never trigger and never advance the counter.
        for _ in 0..10 {
            assert!(!inj.roll_crash(CrashPoint::Submit));
            assert!(!inj.roll_crash(CrashPoint::PreRetire));
        }
        assert!(!inj.roll_crash(CrashPoint::PostLaunch));
        assert!(!inj.roll_crash(CrashPoint::PostLaunch));
        assert!(inj.roll_crash(CrashPoint::PostLaunch), "3rd crossing fires");
        // At most one crash per injector.
        assert!(!inj.roll_crash(CrashPoint::PostLaunch));
    }

    #[test]
    fn crash_roll_draws_no_rng() {
        // The fault stream with and without a crash plan must be
        // identical: roll_crash is purely counter-based.
        let base = FaultPlan {
            seed: 42,
            dma_error_rate: 0.3,
            drop_rate: 0.2,
            ..FaultPlan::default()
        };
        let mut plain = FaultInjector::new(base.clone());
        let mut crashy = FaultInjector::new(FaultPlan {
            crash: Some(CrashPlan::at(CrashPoint::PreRetire, 2)),
            ..base
        });
        for i in 0..128 {
            let _ = crashy.roll_crash(CrashPoint::PreRetire);
            assert_eq!(
                plain.roll_transfer(4096 + i),
                crashy.roll_transfer(4096 + i)
            );
        }
    }

    #[test]
    fn crash_point_names_roundtrip() {
        for point in CrashPoint::ALL {
            assert_eq!(CrashPoint::parse(point.as_str()), Some(point));
        }
        assert_eq!(CrashPoint::parse("bogus"), None);
    }

    #[test]
    fn delay_bounded_by_max_delay() {
        let mut inj = FaultInjector::new(FaultPlan {
            seed: 5,
            delay_rate: 1.0,
            max_delay: SimDuration::from_us(10),
            ..FaultPlan::default()
        });
        for _ in 0..100 {
            match inj.roll_transfer(4096) {
                TransferFault::DelayCompletion(d) => {
                    assert!(d.as_ns() >= 1 && d.as_ns() <= 10_000);
                }
                other => panic!("expected a delay, got {other:?}"),
            }
        }
    }
}
