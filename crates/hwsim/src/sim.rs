//! The discrete-event simulation engine.
//!
//! A minimal, deterministic DES: events are *typed values* ordered by
//! `(time, sequence-number)`, executed against a caller-supplied world
//! `W`. The engine corresponds to the real machine's passage of time; all
//! memif "actors" — application threads, the kernel worker, interrupt
//! handlers, the DMA engine — are expressed as events that charge costs
//! and schedule follow-ups.
//!
//! The queue stores data, not code: each world defines an event type
//! (usually an enum) and one central [`EventWorld::dispatch`] that
//! interprets it. That keeps every scheduled continuation inspectable —
//! it can be logged, serialized, compared across runs, and routed — which
//! is what makes simulations deterministically replayable.
//!
//! Events may be cancelled (needed by the bandwidth-sharing flow network,
//! which reschedules completions whenever contention changes, and by the
//! proceed-and-recover migration abort path).
//!
//! # Scheduler internals: hierarchical timing wheel over a slab arena
//!
//! The queue is a hierarchical timing wheel (a calendar queue), not a
//! binary heap: [`LEVELS`] levels of [`SLOTS`] buckets each, where a
//! level-`l` bucket spans `64^l` nanoseconds. Level 0 buckets are 1 ns
//! wide, so every event in a level-0 bucket shares the exact same
//! timestamp and a bucket's FIFO order *is* insertion order — the
//! `(time, sequence)` dispatch contract falls out structurally, with no
//! comparisons at all. With 6 bits per level, 11 levels cover 66 bits:
//! the top level spans all of `u64` time, so there is no separate
//! overflow list — arbitrarily far futures simply park high and cascade
//! down as the cursor reaches their window.
//!
//! Event records live in a slab arena with an intrusive free list;
//! buckets are doubly-linked chains through the slab, and a per-level
//! 64-bit occupancy bitmap finds the next non-empty bucket with one
//! `trailing_zeros`. An [`EventId`] is a slab index plus a generation
//! stamped into the slot and bumped on every free, so `cancel()` of a
//! live, already-executed, or stale id is an O(1) no-op-or-unlink —
//! no tombstone set, nothing to leak, and `pending()` is a counter
//! read. See DESIGN §15 for the layout, the cascade policy, and the
//! determinism proof.

use crate::time::{SimDuration, SimTime};

/// Bits of virtual time consumed per wheel level.
const LEVEL_BITS: usize = 6;
/// Buckets per level (`2^LEVEL_BITS`).
const SLOTS: usize = 1 << LEVEL_BITS;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// `LEVEL_BITS * LEVELS >= 64`: the top level spans all of `u64` time,
/// so every schedulable instant has a bucket and nothing can overflow.
const LEVELS: usize = 11;
/// Null link in the intrusive bucket/free lists.
const NIL: u32 = u32::MAX;
/// `bucket` value marking a slab slot as free (not queued anywhere).
const FREE_BUCKET: u16 = u16::MAX;

/// Handle to a scheduled event, usable for cancellation.
///
/// A slab slot index plus the generation the slot carried when this
/// event was scheduled. The generation is bumped every time the slot is
/// recycled, so a stale handle (the event already ran, or was already
/// cancelled) simply fails the generation check — cancellation is
/// always O(1) and allocates nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId {
    index: u32,
    generation: u32,
}

/// A world the simulation can drive: a state type plus the typed events
/// that advance it.
///
/// `dispatch` is the *single* point where scheduled events are
/// interpreted; the [`Sim`] never executes code of its own. Worlds are
/// free to dispatch synthesized events recursively (e.g. a flow-network
/// tick fanning out per-flow completion events) — recursion goes through
/// `dispatch` too, so an event log captured there sees everything.
pub trait EventWorld: Sized {
    /// The typed event vocabulary of this world.
    type Event;

    /// Executes one event at the simulation's current time.
    fn dispatch(&mut self, sim: &mut Sim<Self>, event: Self::Event);
}

/// One slab-arena record: an event while queued, a free-list link after.
struct Slot<E> {
    time: SimTime,
    /// Bumped on every free; part of the [`EventId`] ABA guard.
    generation: u32,
    /// Intrusive links: bucket neighbours while queued, `next` doubles
    /// as the free-list link while free.
    prev: u32,
    next: u32,
    /// `level * SLOTS + slot` while queued; [`FREE_BUCKET`] while free.
    bucket: u16,
    event: Option<E>,
}

/// Head/tail of one bucket's FIFO chain through the slab.
#[derive(Clone, Copy)]
struct Bucket {
    head: u32,
    tail: u32,
}

const EMPTY_BUCKET: Bucket = Bucket {
    head: NIL,
    tail: NIL,
};

/// The event queue and virtual clock.
///
/// # Examples
///
/// ```
/// use memif_hwsim::{EventWorld, Sim, SimDuration, SimTime};
///
/// struct Counter(u32);
/// enum Tick {
///     Add(u32),
///     AddLater(u32),
/// }
/// impl EventWorld for Counter {
///     type Event = Tick;
///     fn dispatch(&mut self, sim: &mut Sim<Self>, event: Tick) {
///         match event {
///             Tick::Add(n) => self.0 += n,
///             Tick::AddLater(n) => {
///                 // Events can schedule follow-ups.
///                 sim.schedule_after(SimDuration::from_ns(50), Tick::Add(n));
///             }
///         }
///     }
/// }
///
/// let mut sim: Sim<Counter> = Sim::new();
/// let mut world = Counter(0);
/// sim.schedule_at(SimTime::from_ns(100), Tick::Add(1));
/// sim.schedule_at(SimTime::from_ns(100), Tick::AddLater(10));
/// sim.run(&mut world);
/// assert_eq!(world.0, 11);
/// assert_eq!(sim.now(), SimTime::from_ns(150));
/// ```
pub struct Sim<W: EventWorld> {
    now: SimTime,
    /// Wheel anchor: `<=` the time of every pending event. Equal to the
    /// last executed event's time between steps; advances through
    /// cascade window starts inside a pop.
    cursor: u64,
    /// Per-level bucket-occupancy bitmaps (bit `s` = bucket `s` non-empty).
    occupancy: [u64; LEVELS],
    /// `LEVELS * SLOTS` bucket chains.
    buckets: Vec<Bucket>,
    slab: Vec<Slot<W::Event>>,
    free_head: u32,
    /// Live (scheduled, not yet executed or cancelled) events.
    live: usize,
    executed: u64,
    cancelled: u64,
    peak_pending: usize,
}

impl<W: EventWorld> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W: EventWorld> std::fmt::Debug for Sim<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.live)
            .field("executed", &self.executed)
            .finish()
    }
}

impl<W: EventWorld> Sim<W> {
    /// A simulation at time zero with no pending events.
    #[must_use]
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            cursor: 0,
            occupancy: [0; LEVELS],
            buckets: vec![EMPTY_BUCKET; LEVELS * SLOTS],
            slab: Vec::new(),
            free_head: NIL,
            live: 0,
            executed: 0,
            cancelled: 0,
            peak_pending: 0,
        }
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far (diagnostics).
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events cancelled while still pending (diagnostics).
    /// Cancelling an already-executed or stale id is a no-op and does
    /// not count.
    #[must_use]
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// High-water mark of concurrently pending events (diagnostics).
    #[must_use]
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    /// Number of slab slots ever allocated. Bounded by [`peak_pending`]
    /// (slots are recycled), never by the number of schedule or cancel
    /// calls — the bound the cancel-leak regression test pins.
    ///
    /// [`peak_pending`]: Sim::peak_pending
    #[must_use]
    pub fn arena_capacity(&self) -> usize {
        self.slab.len()
    }

    /// Number of pending (non-cancelled) events. O(1): a counter
    /// maintained at schedule/cancel/pop.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.live
    }

    /// The wheel level whose bucket `time` belongs in, relative to the
    /// current cursor: the lowest level whose bucket span still covers
    /// the highest bit in which `time` differs from the cursor.
    fn level_for(&self, time: u64) -> usize {
        let diff = time ^ self.cursor;
        if diff == 0 {
            0
        } else {
            (63 - diff.leading_zeros() as usize) / LEVEL_BITS
        }
    }

    /// Appends slab slot `index` to the tail of its bucket (computed
    /// from its time and the current cursor). Tail-append preserves
    /// insertion order, which is what makes same-time dispatch order
    /// structural.
    fn link(&mut self, index: u32) {
        let time = self.slab[index as usize].time.as_ns();
        let level = self.level_for(time);
        let slot = ((time >> (LEVEL_BITS * level)) & SLOT_MASK) as usize;
        let bucket = level * SLOTS + slot;
        let tail = self.buckets[bucket].tail;
        {
            let s = &mut self.slab[index as usize];
            s.prev = tail;
            s.next = NIL;
            s.bucket = bucket as u16;
        }
        if tail == NIL {
            self.buckets[bucket].head = index;
        } else {
            self.slab[tail as usize].next = index;
        }
        self.buckets[bucket].tail = index;
        self.occupancy[level] |= 1 << slot;
    }

    /// Unlinks slab slot `index` from its bucket chain, clearing the
    /// occupancy bit if the bucket empties. O(1).
    fn unlink(&mut self, index: u32) {
        let (prev, next, bucket) = {
            let s = &self.slab[index as usize];
            (s.prev, s.next, s.bucket as usize)
        };
        if prev == NIL {
            self.buckets[bucket].head = next;
        } else {
            self.slab[prev as usize].next = next;
        }
        if next == NIL {
            self.buckets[bucket].tail = prev;
        } else {
            self.slab[next as usize].prev = prev;
        }
        if self.buckets[bucket].head == NIL {
            self.occupancy[bucket / SLOTS] &= !(1u64 << (bucket % SLOTS));
        }
    }

    /// Returns slot `index` to the free list, bumping its generation so
    /// every outstanding [`EventId`] for it goes stale.
    fn release(&mut self, index: u32) -> W::Event {
        let free_head = self.free_head;
        let s = &mut self.slab[index as usize];
        let event = s.event.take().expect("releasing an empty slot");
        s.generation = s.generation.wrapping_add(1);
        s.bucket = FREE_BUCKET;
        s.prev = NIL;
        s.next = free_head;
        self.free_head = index;
        self.live -= 1;
        event
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, event: W::Event) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        if self.live == 0 {
            // Empty wheel: catch the anchor up to `now` (it lags when
            // `run_until` advanced an idle clock). Anchoring at `now` —
            // not at `at` — keeps the invariant that the cursor never
            // exceeds any pending event's time: a later schedule may
            // still land anywhere in `[now, at)`.
            self.cursor = self.now.as_ns();
        }
        let index = if self.free_head == NIL {
            let index = u32::try_from(self.slab.len()).expect("event arena exceeds u32 slots");
            self.slab.push(Slot {
                time: at,
                generation: 0,
                prev: NIL,
                next: NIL,
                bucket: FREE_BUCKET,
                event: Some(event),
            });
            index
        } else {
            let index = self.free_head;
            let s = &mut self.slab[index as usize];
            self.free_head = s.next;
            s.time = at;
            s.event = Some(event);
            index
        };
        let generation = self.slab[index as usize].generation;
        self.link(index);
        self.live += 1;
        self.peak_pending = self.peak_pending.max(self.live);
        EventId { index, generation }
    }

    /// Schedules `event` after a delay.
    pub fn schedule_after(&mut self, delay: SimDuration, event: W::Event) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already run (or was already cancelled) is a no-op: the slot's
    /// generation no longer matches the handle. O(1) either way, and no
    /// tombstone state survives the call.
    pub fn cancel(&mut self, id: EventId) {
        let Some(s) = self.slab.get(id.index as usize) else {
            return;
        };
        if s.generation != id.generation || s.bucket == FREE_BUCKET {
            return;
        }
        self.unlink(id.index);
        let _ = self.release(id.index);
        self.cancelled += 1;
    }

    /// Removes and returns the earliest pending event (earliest time,
    /// then earliest insertion), cascading higher wheel levels down as
    /// needed. Advances the cursor to the popped event's time.
    fn pop_earliest(&mut self) -> Option<(SimTime, W::Event)> {
        if self.live == 0 {
            return None;
        }
        loop {
            // Level 0 first: the earliest pending event, if any bucket at
            // or after the cursor's slot is occupied, is the FIFO head of
            // the first such bucket (level-0 buckets are 1 ns wide).
            let c0 = (self.cursor & SLOT_MASK) as u32;
            let mask = self.occupancy[0] & (!0u64 << c0);
            if mask != 0 {
                let slot = mask.trailing_zeros() as usize;
                let head = self.buckets[slot].head;
                debug_assert_ne!(head, NIL);
                let time = self.slab[head as usize].time;
                self.unlink(head);
                let event = self.release(head);
                self.cursor = time.as_ns();
                return Some((time, event));
            }
            // Level 0 is empty at/after the cursor: cascade. The first
            // occupied bucket at the lowest occupied level holds the
            // earliest pending event (see DESIGN §15); advance the
            // cursor to that bucket's window start and redistribute its
            // chain — in order, so FIFO sequence is preserved — into the
            // levels below.
            let mut cascaded = false;
            for level in 1..LEVELS {
                let shift = LEVEL_BITS * level;
                let c = ((self.cursor >> shift) & SLOT_MASK) as u32;
                let mask = self.occupancy[level] & (!0u64 << c);
                if mask == 0 {
                    continue;
                }
                let slot = mask.trailing_zeros() as usize;
                let span = shift + LEVEL_BITS;
                let high = if span >= 64 {
                    0
                } else {
                    (self.cursor >> span) << span
                };
                self.cursor = high | ((slot as u64) << shift);
                let bucket = level * SLOTS + slot;
                let mut index = self.buckets[bucket].head;
                self.buckets[bucket] = EMPTY_BUCKET;
                self.occupancy[level] &= !(1u64 << slot);
                while index != NIL {
                    let next = self.slab[index as usize].next;
                    self.link(index);
                    index = next;
                }
                cascaded = true;
                break;
            }
            assert!(cascaded, "live events but no occupied wheel bucket");
        }
    }

    /// The earliest pending event time, without disturbing the wheel
    /// (no cascading — the cursor must not move, or a later
    /// `schedule_at` between `now` and the cursor would misfile).
    fn peek_time(&self) -> Option<SimTime> {
        if self.live == 0 {
            return None;
        }
        let c0 = (self.cursor & SLOT_MASK) as u32;
        let mask = self.occupancy[0] & (!0u64 << c0);
        if mask != 0 {
            let slot = u64::from(mask.trailing_zeros());
            return Some(SimTime::from_ns((self.cursor & !SLOT_MASK) | slot));
        }
        for level in 1..LEVELS {
            let shift = LEVEL_BITS * level;
            let c = ((self.cursor >> shift) & SLOT_MASK) as u32;
            let mask = self.occupancy[level] & (!0u64 << c);
            if mask == 0 {
                continue;
            }
            // The first occupied bucket at the lowest occupied level
            // contains the earliest event; scan its (one) chain for the
            // minimum time.
            let bucket = level * SLOTS + mask.trailing_zeros() as usize;
            let mut index = self.buckets[bucket].head;
            let mut min = SimTime::MAX;
            while index != NIL {
                let s = &self.slab[index as usize];
                min = min.min(s.time);
                index = s.next;
            }
            return Some(min);
        }
        unreachable!("live events but no occupied wheel bucket")
    }

    /// Executes one event. Returns `false` if the queue was empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        let Some((time, event)) = self.pop_earliest() else {
            return false;
        };
        debug_assert!(time >= self.now);
        self.now = time;
        self.executed += 1;
        world.dispatch(self, event);
        true
    }

    /// Runs until no events remain.
    ///
    /// # Panics
    ///
    /// Panics after 500 million events — a runaway-simulation backstop.
    pub fn run(&mut self, world: &mut W) {
        let limit = self.executed + 500_000_000;
        while self.step(world) {
            assert!(self.executed < limit, "simulation did not converge");
        }
    }

    /// Runs until the clock would pass `until` (events at exactly `until`
    /// still execute) or no events remain.
    pub fn run_until(&mut self, world: &mut W, until: SimTime) {
        loop {
            match self.peek_time() {
                Some(t) if t <= until => {
                    self.step(world);
                }
                _ => break,
            }
        }
        if self.now < until && self.live == 0 {
            self.now = until;
        }
    }
}

#[cfg(test)]
mod reference {
    //! The pre-wheel `BinaryHeap` + tombstone-set scheduler, kept as the
    //! differential-testing oracle: the wheel must reproduce its dispatch
    //! sequence, clock trajectory, and executed count exactly.
    //!
    //! Stripped to a pure priority queue (`step` returns the popped
    //! event instead of dispatching) so the oracle needs no `EventWorld`.
    //! One deliberate deviation: the old `run_until` peeked *including*
    //! tombstones, so a cancelled entry at the heap head with time
    //! `<= until` could trigger a step that executed a live event *past*
    //! `until`. The oracle skims tombstones before peeking, specifying
    //! the intended clamp semantics — which the wheel implements.

    use std::cmp::Ordering as CmpOrdering;
    use std::collections::BinaryHeap;
    use std::collections::HashSet;

    use crate::time::SimTime;

    struct Scheduled<E> {
        time: SimTime,
        id: u64,
        event: E,
    }

    impl<E> PartialEq for Scheduled<E> {
        fn eq(&self, other: &Self) -> bool {
            self.time == other.time && self.id == other.id
        }
    }
    impl<E> Eq for Scheduled<E> {}
    impl<E> PartialOrd for Scheduled<E> {
        fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
            Some(self.cmp(other))
        }
    }
    impl<E> Ord for Scheduled<E> {
        fn cmp(&self, other: &Self) -> CmpOrdering {
            // BinaryHeap is a max-heap; invert for earliest-first order.
            // Ties break by insertion order for determinism.
            other.time.cmp(&self.time).then(other.id.cmp(&self.id))
        }
    }

    pub struct HeapSim<E> {
        pub now: SimTime,
        heap: BinaryHeap<Scheduled<E>>,
        next_id: u64,
        cancelled: HashSet<u64>,
        pub executed: u64,
    }

    impl<E> HeapSim<E> {
        pub fn new() -> Self {
            HeapSim {
                now: SimTime::ZERO,
                heap: BinaryHeap::new(),
                next_id: 0,
                cancelled: HashSet::new(),
                executed: 0,
            }
        }

        pub fn pending(&self) -> usize {
            self.heap
                .iter()
                .filter(|ev| !self.cancelled.contains(&ev.id))
                .count()
        }

        pub fn schedule_at(&mut self, at: SimTime, event: E) -> u64 {
            assert!(at >= self.now);
            let id = self.next_id;
            self.next_id += 1;
            self.heap.push(Scheduled {
                time: at,
                id,
                event,
            });
            id
        }

        pub fn cancel(&mut self, id: u64) {
            self.cancelled.insert(id);
        }

        pub fn step(&mut self) -> Option<(SimTime, E)> {
            while let Some(ev) = self.heap.pop() {
                if self.cancelled.remove(&ev.id) {
                    continue;
                }
                self.now = ev.time;
                self.executed += 1;
                return Some((ev.time, ev.event));
            }
            None
        }

        /// Pops tombstones off the heap head so `peek` sees a live event.
        fn skim(&mut self) {
            while let Some(ev) = self.heap.peek() {
                if self.cancelled.contains(&ev.id) {
                    let ev = self.heap.pop().expect("peeked");
                    self.cancelled.remove(&ev.id);
                } else {
                    break;
                }
            }
        }

        pub fn run_until_into(&mut self, until: SimTime, log: &mut Vec<(SimTime, E)>) {
            loop {
                self.skim();
                match self.heap.peek() {
                    Some(ev) if ev.time <= until => {
                        let popped = self.step().expect("peeked a live event");
                        log.push(popped);
                    }
                    _ => break,
                }
            }
            if self.now < until && self.heap.is_empty() {
                self.now = until;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::reference::HeapSim;
    use super::*;
    use proptest::prelude::*;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    enum Ev {
        Log(&'static str),
        LogAt(u64, &'static str),
        Chain(&'static str),
        SchedulePast,
    }

    impl EventWorld for World {
        type Event = Ev;
        fn dispatch(&mut self, sim: &mut Sim<Self>, event: Ev) {
            match event {
                Ev::Log(tag) => self.log.push((sim.now().as_ns(), tag)),
                Ev::LogAt(at, tag) => self.log.push((at, tag)),
                Ev::Chain(tag) => {
                    sim.schedule_after(SimDuration::from_ns(4), Ev::Log(tag));
                }
                Ev::SchedulePast => {
                    sim.schedule_at(SimTime::from_ns(5), Ev::Log("never"));
                }
            }
        }
    }

    #[test]
    fn events_run_in_time_order() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_ns(30), Ev::Log("c"));
        sim.schedule_at(SimTime::from_ns(10), Ev::Log("a"));
        sim.schedule_at(SimTime::from_ns(20), Ev::Log("b"));
        sim.run(&mut w);
        assert_eq!(w.log, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert_eq!(sim.now(), SimTime::from_ns(30));
        assert_eq!(sim.executed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        let t = SimTime::from_ns(5);
        sim.schedule_at(t, Ev::LogAt(0, "first"));
        sim.schedule_at(t, Ev::LogAt(0, "second"));
        sim.run(&mut w);
        assert_eq!(w.log, vec![(0, "first"), (0, "second")]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_ns(1), Ev::Chain("chained"));
        sim.run(&mut w);
        assert_eq!(w.log, vec![(5, "chained")]);
    }

    #[test]
    fn cancellation() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        let id = sim.schedule_at(SimTime::from_ns(10), Ev::LogAt(0, "cancelled"));
        sim.schedule_at(SimTime::from_ns(5), Ev::LogAt(0, "kept"));
        sim.cancel(id);
        sim.run(&mut w);
        assert_eq!(w.log, vec![(0, "kept")]);
        assert_eq!(sim.pending(), 0);
        assert_eq!(sim.cancelled(), 1);
    }

    #[test]
    fn run_until_stops_the_clock() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_ns(10), Ev::LogAt(0, "early"));
        sim.schedule_at(SimTime::from_ns(100), Ev::LogAt(0, "late"));
        sim.run_until(&mut w, SimTime::from_ns(50));
        assert_eq!(w.log, vec![(0, "early")]);
        assert_eq!(sim.now(), SimTime::from_ns(10));
        sim.run(&mut w);
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_ns(10), Ev::SchedulePast);
        sim.run(&mut w);
    }

    #[test]
    fn far_future_events_cascade_down_in_order() {
        // Times spread across every wheel level, including the top
        // (bit 63), scheduled in shuffled order with same-time ties.
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        let times = [
            1u64 << 40,
            3,
            (1 << 62) + 5,
            1 << 62,
            (1 << 40) + 1,
            u64::MAX - 1,
            3,
            1 << 13,
        ];
        for (i, &t) in times.iter().enumerate() {
            let tags = ["a", "b", "c", "d", "e", "f", "g", "h"];
            sim.schedule_at(SimTime::from_ns(t), Ev::LogAt(t, tags[i]));
        }
        sim.run(&mut w);
        assert_eq!(
            w.log,
            vec![
                (3, "b"),
                (3, "g"), // tie preserved in insertion order
                (1 << 13, "h"),
                (1 << 40, "a"),
                ((1 << 40) + 1, "e"),
                (1 << 62, "d"),
                ((1 << 62) + 5, "c"),
                (u64::MAX - 1, "f"),
            ]
        );
        assert_eq!(sim.now(), SimTime::from_ns(u64::MAX - 1));
    }

    #[test]
    fn cancelling_executed_ids_cannot_grow_memory() {
        // The old scheduler's tombstone set grew unboundedly when
        // already-executed ids were cancelled (the tombstone was never
        // popped). Generation-checked slab ids make the cancel a pure
        // no-op: after 100k schedule/run/cancel rounds the arena still
        // holds exactly as many slots as the peak number of concurrently
        // pending events.
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        let mut stale: Vec<EventId> = Vec::new();
        for round in 0..100_000u64 {
            let id = sim.schedule_after(SimDuration::from_ns(1), Ev::Log("tick"));
            sim.run(&mut w);
            sim.cancel(id); // already executed: must be a no-op
            if round < 4 {
                stale.push(id);
            }
            for &old in &stale {
                sim.cancel(old); // long-stale ids too
            }
        }
        assert_eq!(sim.pending(), 0);
        assert_eq!(sim.executed(), 100_000);
        assert_eq!(sim.cancelled(), 0, "no live event was ever cancelled");
        assert_eq!(sim.peak_pending(), 1);
        assert_eq!(
            sim.arena_capacity(),
            1,
            "arena must stay bounded by peak pending, not by cancel calls"
        );
    }

    #[test]
    fn recycled_slots_go_stale_for_old_handles() {
        // id_a's slot is recycled by a later schedule; cancelling id_a
        // must not kill the new occupant.
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        let id_a = sim.schedule_at(SimTime::from_ns(1), Ev::LogAt(1, "a"));
        sim.run(&mut w);
        let _id_b = sim.schedule_at(SimTime::from_ns(2), Ev::LogAt(2, "b"));
        sim.cancel(id_a); // stale: same slot, older generation
        assert_eq!(sim.pending(), 1);
        sim.run(&mut w);
        assert_eq!(w.log, vec![(1, "a"), (2, "b")]);
    }

    #[test]
    fn rearm_churn_recycles_one_slot() {
        // The flow-network pattern: cancel + reschedule the single
        // completion timer on every contention change.
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        let mut timer = sim.schedule_at(SimTime::from_ns(1_000), Ev::LogAt(0, "unreached"));
        for i in 0..10_000u64 {
            sim.cancel(timer);
            timer = sim.schedule_at(SimTime::from_ns(1_000 + i), Ev::LogAt(1_000 + i, "fired"));
        }
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.cancelled(), 10_000);
        assert_eq!(sim.arena_capacity(), 1);
        sim.run(&mut w);
        assert_eq!(w.log, vec![(10_999, "fired")]);
    }

    #[test]
    fn run_until_with_only_cancelled_events_advances_the_clock() {
        // A cancelled event beyond `until` leaves nothing live, so the
        // clock clamps to `until` (the old scheduler left tombstones in
        // the heap and stalled the clock here).
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        let id = sim.schedule_at(SimTime::from_ns(100), Ev::LogAt(0, "cancelled"));
        sim.cancel(id);
        sim.run_until(&mut w, SimTime::from_ns(50));
        assert!(w.log.is_empty());
        assert_eq!(sim.now(), SimTime::from_ns(50));
    }

    // --- Differential test: wheel vs the old heap scheduler ---------

    /// Minimal world for the differential test: events are schedule
    /// sequence numbers, dispatch just logs `(now, tag)`.
    #[derive(Default)]
    struct TagWorld {
        log: Vec<(SimTime, u32)>,
    }

    impl EventWorld for TagWorld {
        type Event = u32;
        fn dispatch(&mut self, sim: &mut Sim<Self>, tag: u32) {
            self.log.push((sim.now(), tag));
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        /// Schedule at `now + delta`.
        Schedule { delta: u64 },
        /// Cancel the `which % issued`-th id ever issued — may be live,
        /// executed, already cancelled, or recycled.
        Cancel { which: usize },
        /// The flow-rearm pattern: cancel an old id, schedule a fresh one.
        Reschedule { which: usize, delta: u64 },
        /// Execute up to `n` events.
        Step { n: u8 },
        /// Run both schedulers until `now + delta`.
        RunUntil { delta: u64 },
    }

    /// Deltas spanning every wheel level: same-tick (0), near, mid, and
    /// far-future (top-level, cascade-heavy) horizons. Entries repeat to
    /// weight toward the near-future common case.
    fn delta_strategy() -> impl Strategy<Value = u64> {
        prop_oneof![
            0u64..4,
            0u64..4,
            0u64..1_000,
            0u64..1_000,
            (1u64 << 30)..(1u64 << 34),
            (1u64 << 55)..(1u64 << 62),
        ]
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            delta_strategy().prop_map(|delta| Op::Schedule { delta }),
            delta_strategy().prop_map(|delta| Op::Schedule { delta }),
            delta_strategy().prop_map(|delta| Op::Schedule { delta }),
            any::<usize>().prop_map(|which| Op::Cancel { which }),
            (any::<usize>(), delta_strategy())
                .prop_map(|(which, delta)| Op::Reschedule { which, delta }),
            (1u8..8).prop_map(|n| Op::Step { n }),
            (1u8..8).prop_map(|n| Op::Step { n }),
            delta_strategy().prop_map(|delta| Op::RunUntil { delta }),
        ]
    }

    fn run_differential(ops: &[Op]) {
        let mut wheel: Sim<TagWorld> = Sim::new();
        let mut world = TagWorld::default();
        let mut oracle: HeapSim<u32> = HeapSim::new();
        let mut oracle_log: Vec<(SimTime, u32)> = Vec::new();
        let mut wheel_ids: Vec<EventId> = Vec::new();
        let mut oracle_ids: Vec<u64> = Vec::new();
        let mut tag = 0u32;

        let mut schedule = |delta: u64,
                            wheel: &mut Sim<TagWorld>,
                            oracle: &mut HeapSim<u32>,
                            wheel_ids: &mut Vec<EventId>,
                            oracle_ids: &mut Vec<u64>| {
            let at = SimTime::from_ns(wheel.now().as_ns().saturating_add(delta));
            wheel_ids.push(wheel.schedule_at(at, tag));
            oracle_ids.push(oracle.schedule_at(at, tag));
            tag += 1;
        };

        for op in ops {
            match *op {
                Op::Schedule { delta } => {
                    schedule(
                        delta,
                        &mut wheel,
                        &mut oracle,
                        &mut wheel_ids,
                        &mut oracle_ids,
                    );
                }
                Op::Cancel { which } => {
                    if !wheel_ids.is_empty() {
                        let i = which % wheel_ids.len();
                        wheel.cancel(wheel_ids[i]);
                        oracle.cancel(oracle_ids[i]);
                    }
                }
                Op::Reschedule { which, delta } => {
                    if !wheel_ids.is_empty() {
                        let i = which % wheel_ids.len();
                        wheel.cancel(wheel_ids[i]);
                        oracle.cancel(oracle_ids[i]);
                    }
                    schedule(
                        delta,
                        &mut wheel,
                        &mut oracle,
                        &mut wheel_ids,
                        &mut oracle_ids,
                    );
                }
                Op::Step { n } => {
                    for _ in 0..n {
                        let advanced = wheel.step(&mut world);
                        match oracle.step() {
                            Some(popped) => {
                                assert!(advanced);
                                oracle_log.push(popped);
                            }
                            None => assert!(!advanced),
                        }
                    }
                }
                Op::RunUntil { delta } => {
                    let until = SimTime::from_ns(wheel.now().as_ns().saturating_add(delta));
                    wheel.run_until(&mut world, until);
                    oracle.run_until_into(until, &mut oracle_log);
                }
            }
            assert_eq!(wheel.pending(), oracle.pending());
            assert_eq!(wheel.now(), oracle.now);
            assert_eq!(wheel.executed(), oracle.executed);
        }

        // Drain both to completion and compare the full dispatch record.
        while let Some(popped) = oracle.step() {
            assert!(wheel.step(&mut world));
            oracle_log.push(popped);
        }
        assert!(!wheel.step(&mut world));
        assert_eq!(world.log, oracle_log);
        assert_eq!(wheel.now(), oracle.now);
        assert_eq!(wheel.executed(), oracle.executed);
        assert_eq!(wheel.pending(), 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(512))]

        /// The wheel must be observationally identical to the old heap
        /// scheduler on arbitrary schedule/cancel/reschedule/step streams:
        /// same dispatch sequence (same-tick ties included), same `now()`
        /// trajectory, same executed counts.
        #[test]
        fn wheel_matches_heap_oracle(
            ops in proptest::collection::vec(op_strategy(), 1..250)
        ) {
            run_differential(&ops);
        }
    }
}
