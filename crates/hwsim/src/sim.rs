//! The discrete-event simulation engine.
//!
//! A minimal, deterministic DES: events are *typed values* ordered by
//! `(time, sequence-number)`, executed against a caller-supplied world
//! `W`. The engine corresponds to the real machine's passage of time; all
//! memif "actors" — application threads, the kernel worker, interrupt
//! handlers, the DMA engine — are expressed as events that charge costs
//! and schedule follow-ups.
//!
//! The queue stores data, not code: each world defines an event type
//! (usually an enum) and one central [`EventWorld::dispatch`] that
//! interprets it. That keeps every scheduled continuation inspectable —
//! it can be logged, serialized, compared across runs, and routed — which
//! is what makes simulations deterministically replayable.
//!
//! Events may be cancelled (needed by the bandwidth-sharing flow network,
//! which reschedules completions whenever contention changes, and by the
//! proceed-and-recover migration abort path).

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::{SimDuration, SimTime};

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// A world the simulation can drive: a state type plus the typed events
/// that advance it.
///
/// `dispatch` is the *single* point where scheduled events are
/// interpreted; the [`Sim`] never executes code of its own. Worlds are
/// free to dispatch synthesized events recursively (e.g. a flow-network
/// tick fanning out per-flow completion events) — recursion goes through
/// `dispatch` too, so an event log captured there sees everything.
pub trait EventWorld: Sized {
    /// The typed event vocabulary of this world.
    type Event;

    /// Executes one event at the simulation's current time.
    fn dispatch(&mut self, sim: &mut Sim<Self>, event: Self::Event);
}

struct Scheduled<E> {
    time: SimTime,
    id: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // BinaryHeap is a max-heap; invert for earliest-first order.
        // Ties break by insertion order for determinism.
        other.time.cmp(&self.time).then(other.id.cmp(&self.id))
    }
}

/// The event queue and virtual clock.
///
/// # Examples
///
/// ```
/// use memif_hwsim::{EventWorld, Sim, SimDuration, SimTime};
///
/// struct Counter(u32);
/// enum Tick {
///     Add(u32),
///     AddLater(u32),
/// }
/// impl EventWorld for Counter {
///     type Event = Tick;
///     fn dispatch(&mut self, sim: &mut Sim<Self>, event: Tick) {
///         match event {
///             Tick::Add(n) => self.0 += n,
///             Tick::AddLater(n) => {
///                 // Events can schedule follow-ups.
///                 sim.schedule_after(SimDuration::from_ns(50), Tick::Add(n));
///             }
///         }
///     }
/// }
///
/// let mut sim: Sim<Counter> = Sim::new();
/// let mut world = Counter(0);
/// sim.schedule_at(SimTime::from_ns(100), Tick::Add(1));
/// sim.schedule_at(SimTime::from_ns(100), Tick::AddLater(10));
/// sim.run(&mut world);
/// assert_eq!(world.0, 11);
/// assert_eq!(sim.now(), SimTime::from_ns(150));
/// ```
pub struct Sim<W: EventWorld> {
    now: SimTime,
    heap: BinaryHeap<Scheduled<W::Event>>,
    next_id: u64,
    cancelled: HashSet<u64>,
    executed: u64,
}

impl<W: EventWorld> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W: EventWorld> std::fmt::Debug for Sim<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("executed", &self.executed)
            .finish()
    }
}

impl<W: EventWorld> Sim<W> {
    /// A simulation at time zero with no pending events.
    #[must_use]
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            next_id: 0,
            cancelled: HashSet::new(),
            executed: 0,
        }
    }

    /// Current virtual time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far (diagnostics).
    #[must_use]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of pending (non-cancelled) events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.heap
            .iter()
            .filter(|ev| !self.cancelled.contains(&ev.id))
            .count()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, event: W::Event) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        let id = self.next_id;
        self.next_id += 1;
        self.heap.push(Scheduled {
            time: at,
            id,
            event,
        });
        EventId(id)
    }

    /// Schedules `event` after a delay.
    pub fn schedule_after(&mut self, delay: SimDuration, event: W::Event) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already run (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Executes one event. Returns `false` if the queue was empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.id) {
                continue;
            }
            debug_assert!(ev.time >= self.now);
            self.now = ev.time;
            self.executed += 1;
            world.dispatch(self, ev.event);
            return true;
        }
        false
    }

    /// Runs until no events remain.
    ///
    /// # Panics
    ///
    /// Panics after 500 million events — a runaway-simulation backstop.
    pub fn run(&mut self, world: &mut W) {
        let limit = self.executed + 500_000_000;
        while self.step(world) {
            assert!(self.executed < limit, "simulation did not converge");
        }
    }

    /// Runs until the clock would pass `until` (events at exactly `until`
    /// still execute) or no events remain.
    pub fn run_until(&mut self, world: &mut W, until: SimTime) {
        loop {
            match self.heap.peek() {
                Some(ev) if ev.time <= until => {
                    self.step(world);
                }
                _ => break,
            }
        }
        if self.now < until && self.heap.is_empty() {
            self.now = until;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    enum Ev {
        Log(&'static str),
        LogAt(u64, &'static str),
        Chain(&'static str),
        SchedulePast,
    }

    impl EventWorld for World {
        type Event = Ev;
        fn dispatch(&mut self, sim: &mut Sim<Self>, event: Ev) {
            match event {
                Ev::Log(tag) => self.log.push((sim.now().as_ns(), tag)),
                Ev::LogAt(at, tag) => self.log.push((at, tag)),
                Ev::Chain(tag) => {
                    sim.schedule_after(SimDuration::from_ns(4), Ev::Log(tag));
                }
                Ev::SchedulePast => {
                    sim.schedule_at(SimTime::from_ns(5), Ev::Log("never"));
                }
            }
        }
    }

    #[test]
    fn events_run_in_time_order() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_ns(30), Ev::Log("c"));
        sim.schedule_at(SimTime::from_ns(10), Ev::Log("a"));
        sim.schedule_at(SimTime::from_ns(20), Ev::Log("b"));
        sim.run(&mut w);
        assert_eq!(w.log, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert_eq!(sim.now(), SimTime::from_ns(30));
        assert_eq!(sim.executed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        let t = SimTime::from_ns(5);
        sim.schedule_at(t, Ev::LogAt(0, "first"));
        sim.schedule_at(t, Ev::LogAt(0, "second"));
        sim.run(&mut w);
        assert_eq!(w.log, vec![(0, "first"), (0, "second")]);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_ns(1), Ev::Chain("chained"));
        sim.run(&mut w);
        assert_eq!(w.log, vec![(5, "chained")]);
    }

    #[test]
    fn cancellation() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        let id = sim.schedule_at(SimTime::from_ns(10), Ev::LogAt(0, "cancelled"));
        sim.schedule_at(SimTime::from_ns(5), Ev::LogAt(0, "kept"));
        sim.cancel(id);
        sim.run(&mut w);
        assert_eq!(w.log, vec![(0, "kept")]);
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn run_until_stops_the_clock() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_ns(10), Ev::LogAt(0, "early"));
        sim.schedule_at(SimTime::from_ns(100), Ev::LogAt(0, "late"));
        sim.run_until(&mut w, SimTime::from_ns(50));
        assert_eq!(w.log, vec![(0, "early")]);
        assert_eq!(sim.now(), SimTime::from_ns(10));
        sim.run(&mut w);
        assert_eq!(w.log.len(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = World::default();
        sim.schedule_at(SimTime::from_ns(10), Ev::SchedulePast);
        sim.run(&mut w);
    }
}
