//! Hardware substrate simulator for the memif reproduction.
//!
//! The memif paper evaluates on a TI KeyStone II SoC: four Cortex-A15
//! cores, 6 MB of on-chip SRAM next to 8 GB of DDR3, and the EDMA3 DMA
//! engine. That hardware is simulated here as four cooperating pieces:
//!
//! * [`sim`] — a deterministic discrete-event engine with a nanosecond
//!   virtual clock; kernel contexts, interrupts, and the DMA engine are
//!   events against a caller-defined world type.
//! * [`cost`] — the calibrated per-operation cost model (page-table
//!   walks, PTE/TLB updates, descriptor writes, syscalls, ...), with the
//!   paper's KeyStone II numbers as the primary profile.
//! * [`flow`] — a fluid model of bandwidth contention: DMA transfers and
//!   CPU streaming share each memory node's measured bandwidth.
//! * [`phys`] / [`topology`] — sparse byte-backed physical memory and the
//!   pseudo-NUMA abstraction over heterogeneous banks, including the
//!   "SRAM hidden until after boot" bring-up quirk of §6.1.
//! * [`dma`] — the EDMA3-model engine: 512 twelve-field transfer
//!   descriptors in uncached PaRAM, scatter-gather chaining, and the
//!   chain-reuse optimization of §5.3.
//!
//! Byte copies are real (backed by [`phys::PhysMem`]), so higher layers
//! can verify data integrity and observe genuine race outcomes; only
//! *time* is simulated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod dma;
pub mod fault;
pub mod flow;
pub mod meter;
pub mod phys;
pub mod sim;
pub mod time;
pub mod topology;

pub use cost::CostModel;
pub use dma::{CompletionDelivery, DmaOutcome, LaunchTicket, TcScheduler, TransferId};
pub use fault::{
    Brownout, CrashPlan, CrashPoint, FaultInjector, FaultPlan, FaultStats, TransferFault,
};
pub use flow::{FlowId, FlowNet, FlowSystem, ResourceId};
pub use meter::{Context, Measurement, Phase, PhaseBreakdown, UsageMeter};
pub use phys::{PhysAddr, PhysMem};
pub use sim::{EventId, EventWorld, Sim};
pub use time::{SimDuration, SimTime};
pub use topology::{MemoryKind, MemoryNode, NodeId, TierRank, Topology, TopologyError};
