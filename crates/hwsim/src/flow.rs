//! Bandwidth-shared data flows.
//!
//! Memory traffic on the simulated SoC — DMA transfers, CPU streaming
//! loads/stores — contends for the finite bandwidth of each memory node
//! and of the DMA engine. This module models each ongoing transfer as a
//! *flow* over a set of *resources*; concurrently active flows share each
//! resource equally, and a flow progresses at the minimum of its own
//! demand and its fair share on every resource it touches (an
//! equal-share approximation of max-min fairness, adequate at the small
//! flow counts the experiments generate).
//!
//! [`FlowNet`] is the pure fluid model; [`FlowSystem`] couples it to the
//! DES, rescheduling the single completion timer whenever the contention
//! picture changes.

use std::collections::BTreeMap;
use std::collections::HashMap;

use crate::sim::{EventId, EventWorld, Sim};
use crate::time::{SimDuration, SimTime};

/// Handle to a bandwidth resource (a memory node's bus, the DMA engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(usize);

impl ResourceId {
    /// The resource's stable index within its network (used by event
    /// logs and diagnostics).
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

/// Handle to an active flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(u64);

/// Bytes below which a flow counts as finished (absorbs the ±1 ns
/// rounding of completion times).
const EPSILON_BYTES: f64 = 0.5;

#[derive(Debug)]
struct Resource {
    name: String,
    capacity_gbps: f64,
}

#[derive(Debug)]
struct Flow {
    resources: Vec<ResourceId>,
    remaining_bytes: f64,
    /// Current progress rate in bytes/ns (== GB/s numerically).
    rate: f64,
    demand_gbps: f64,
}

/// The pure fluid-flow bandwidth model (no event coupling).
///
/// # Examples
///
/// ```
/// use memif_hwsim::{FlowNet, SimTime};
///
/// let mut net = FlowNet::new();
/// let bus = net.add_resource("ddr", 2.0); // 2 GB/s
/// net.start(SimTime::ZERO, &[bus], 2_000, 100.0);
/// net.start(SimTime::ZERO, &[bus], 2_000, 100.0);
/// // Two equal flows share the bus: each finishes after 2000 ns.
/// assert_eq!(net.next_completion(SimTime::ZERO), Some(SimTime::from_ns(2_000)));
/// ```
#[derive(Debug, Default)]
pub struct FlowNet {
    resources: Vec<Resource>,
    flows: BTreeMap<u64, Flow>,
    next_flow: u64,
    last_advance: SimTime,
    /// Total bytes ever delivered, per resource (utilization accounting).
    delivered: Vec<f64>,
}

impl FlowNet {
    /// An empty network.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a resource with `capacity_gbps` gigabytes per second.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not strictly positive.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity_gbps: f64) -> ResourceId {
        assert!(capacity_gbps > 0.0, "resource capacity must be positive");
        self.resources.push(Resource {
            name: name.into(),
            capacity_gbps,
        });
        self.delivered.push(0.0);
        ResourceId(self.resources.len() - 1)
    }

    /// Resource name (diagnostics).
    #[must_use]
    pub fn resource_name(&self, r: ResourceId) -> &str {
        &self.resources[r.0].name
    }

    /// Current capacity of resource `r` in GB/s.
    #[must_use]
    pub fn capacity(&self, r: ResourceId) -> f64 {
        self.resources[r.0].capacity_gbps
    }

    /// Changes the capacity of resource `r` at instant `now` (a bandwidth
    /// brownout or its recovery). Flow progress is brought up to `now`
    /// under the old capacity first; every sharing flow then proceeds at
    /// its new rate.
    ///
    /// # Panics
    ///
    /// Panics if the new capacity is not strictly positive.
    pub fn set_capacity(&mut self, now: SimTime, r: ResourceId, capacity_gbps: f64) {
        assert!(capacity_gbps > 0.0, "resource capacity must be positive");
        self.advance(now);
        self.resources[r.0].capacity_gbps = capacity_gbps;
        self.recompute_rates();
    }

    /// Starts a flow of `bytes` over `resources`, self-capped at
    /// `demand_gbps`. Progress of all flows is brought up to `now` first.
    ///
    /// # Panics
    ///
    /// Panics on an empty resource list, a non-positive demand, or a
    /// resource id from another network.
    pub fn start(
        &mut self,
        now: SimTime,
        resources: &[ResourceId],
        bytes: u64,
        demand_gbps: f64,
    ) -> FlowId {
        assert!(!resources.is_empty(), "flow needs at least one resource");
        assert!(demand_gbps > 0.0, "flow demand must be positive");
        for r in resources {
            assert!(r.0 < self.resources.len(), "unknown resource");
        }
        self.advance(now);
        let id = self.next_flow;
        self.next_flow += 1;
        self.flows.insert(
            id,
            Flow {
                resources: resources.to_vec(),
                remaining_bytes: bytes as f64,
                rate: 0.0,
                demand_gbps,
            },
        );
        self.recompute_rates();
        FlowId(id)
    }

    /// Removes a flow before completion (e.g. an aborted DMA transfer).
    /// Returns the bytes that had not yet been moved, or `None` if the
    /// flow no longer exists.
    pub fn cancel(&mut self, now: SimTime, id: FlowId) -> Option<u64> {
        self.advance(now);
        let flow = self.flows.remove(&id.0)?;
        self.recompute_rates();
        Some(flow.remaining_bytes.max(0.0).round() as u64)
    }

    /// Number of active flows.
    #[must_use]
    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// Drops every active flow without crediting further progress
    /// (simulated crash: in-flight data vanishes). Resources, their
    /// capacities, and delivered-byte accounting survive.
    pub fn drop_all_flows(&mut self, now: SimTime) {
        self.advance(now);
        self.flows.clear();
    }

    /// Advances all flows to `now`, removes the finished ones, and
    /// returns their ids in creation order.
    pub fn take_finished(&mut self, now: SimTime) -> Vec<FlowId> {
        self.advance(now);
        let finished: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining_bytes <= EPSILON_BYTES)
            .map(|(id, _)| *id)
            .collect();
        for id in &finished {
            self.flows.remove(id);
        }
        if !finished.is_empty() {
            self.recompute_rates();
        }
        finished.into_iter().map(FlowId).collect()
    }

    /// The earliest instant at which some flow completes, if any flow is
    /// active.
    #[must_use]
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        self.flows
            .values()
            .map(|f| {
                if f.remaining_bytes <= EPSILON_BYTES {
                    0
                } else {
                    // rate > 0: every flow has positive demand and every
                    // resource positive capacity.
                    (f.remaining_bytes / f.rate).ceil() as u64
                }
            })
            .min()
            .map(|eta| now + SimDuration::from_ns(eta))
    }

    /// Total bytes delivered through resource `r` so far.
    #[must_use]
    pub fn delivered_bytes(&self, r: ResourceId) -> f64 {
        self.delivered[r.0]
    }

    fn advance(&mut self, now: SimTime) {
        let dt = now.since(self.last_advance).as_ns() as f64;
        self.last_advance = self.last_advance.max(now);
        if dt <= 0.0 {
            return;
        }
        for flow in self.flows.values_mut() {
            let moved = (flow.rate * dt).min(flow.remaining_bytes);
            flow.remaining_bytes -= moved;
            for r in &flow.resources {
                self.delivered[r.0] += moved;
            }
        }
    }

    fn recompute_rates(&mut self) {
        let mut active_per_resource = vec![0usize; self.resources.len()];
        for flow in self.flows.values() {
            for r in &flow.resources {
                active_per_resource[r.0] += 1;
            }
        }
        for flow in self.flows.values_mut() {
            let share = flow
                .resources
                .iter()
                .map(|r| self.resources[r.0].capacity_gbps / active_per_resource[r.0] as f64)
                .fold(f64::INFINITY, f64::min);
            flow.rate = share.min(flow.demand_gbps);
        }
    }
}

/// [`FlowNet`] wired into the DES: every flow carries a typed completion
/// payload, and the single pending timer is rescheduled whenever flows
/// start, finish, or are cancelled.
///
/// `W` is the experiment's world type. The system stores a plain function
/// pointer that constructs the world's "flow tick" event, so its timer
/// can be scheduled without capturing code; the world's dispatcher routes
/// that tick back into [`FlowSystem::on_tick`], which hands each finished
/// flow's payload to [`EventWorld::dispatch`] *synchronously and in flow
/// creation order* (so same-instant completions interleave exactly like
/// direct calls would, and a logging dispatcher still sees them all).
pub struct FlowSystem<W: EventWorld> {
    net: FlowNet,
    payloads: HashMap<u64, W::Event>,
    timer: Option<EventId>,
    tick: fn() -> W::Event,
}

impl<W: EventWorld> std::fmt::Debug for FlowSystem<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowSystem")
            .field("active", &self.net.active())
            .field("armed", &self.timer.is_some())
            .finish()
    }
}

impl<W: EventWorld> FlowSystem<W> {
    /// Creates a flow system. `tick` constructs the world event that the
    /// world's dispatcher must route to [`FlowSystem::on_tick`].
    pub fn new(tick: fn() -> W::Event) -> Self {
        FlowSystem {
            net: FlowNet::new(),
            payloads: HashMap::new(),
            timer: None,
            tick,
        }
    }

    /// Registers a bandwidth resource.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not strictly positive.
    pub fn add_resource(&mut self, name: impl Into<String>, capacity_gbps: f64) -> ResourceId {
        self.net.add_resource(name, capacity_gbps)
    }

    /// Read access to the underlying fluid model.
    #[must_use]
    pub fn net(&self) -> &FlowNet {
        &self.net
    }

    /// Starts a flow whose completion dispatches `on_complete`.
    ///
    /// # Panics
    ///
    /// Propagates the panics of [`FlowNet::start`].
    pub fn start_flow(
        &mut self,
        sim: &mut Sim<W>,
        resources: &[ResourceId],
        bytes: u64,
        demand_gbps: f64,
        on_complete: W::Event,
    ) -> FlowId {
        let id = self.net.start(sim.now(), resources, bytes, demand_gbps);
        self.payloads.insert(id.0, on_complete);
        self.rearm(sim);
        id
    }

    /// Changes a resource's capacity mid-simulation and reschedules the
    /// completion timer: active flows slow down (brownout) or speed up
    /// (recovery) from `sim.now()` onwards.
    ///
    /// # Panics
    ///
    /// Propagates the panics of [`FlowNet::set_capacity`].
    pub fn set_capacity(&mut self, sim: &mut Sim<W>, r: ResourceId, capacity_gbps: f64) {
        self.net.set_capacity(sim.now(), r, capacity_gbps);
        self.rearm(sim);
    }

    /// Cancels a flow; its completion payload is dropped undispatched.
    /// Returns the unmoved bytes, or `None` if the flow had already
    /// completed.
    pub fn cancel_flow(&mut self, sim: &mut Sim<W>, id: FlowId) -> Option<u64> {
        let left = self.net.cancel(sim.now(), id)?;
        self.payloads.remove(&id.0);
        self.rearm(sim);
        Some(left)
    }

    /// Drops all volatile flow state after a simulated crash: every
    /// active flow and its pending completion payload vanish and the
    /// completion timer is disarmed. Resources and capacities survive.
    pub fn reset_volatile(&mut self, sim: &mut Sim<W>) {
        self.net.drop_all_flows(sim.now());
        self.payloads.clear();
        if let Some(t) = self.timer.take() {
            sim.cancel(t);
        }
    }

    fn rearm(&mut self, sim: &mut Sim<W>) {
        if let Some(t) = self.timer.take() {
            sim.cancel(t);
        }
        if let Some(at) = self.net.next_completion(sim.now()) {
            self.timer = Some(sim.schedule_at(at, (self.tick)()));
        }
    }

    /// Handles the flow-tick event: collects flows that have finished by
    /// `sim.now()`, rearms the timer, and dispatches each finished flow's
    /// payload in creation order. The world's dispatcher must call this
    /// for the event produced by its `tick` constructor.
    pub fn on_tick(world: &mut W, sim: &mut Sim<W>, accessor: fn(&mut W) -> &mut FlowSystem<W>) {
        let this = accessor(world);
        this.timer = None;
        let finished = this.net.take_finished(sim.now());
        let payloads: Vec<W::Event> = finished
            .iter()
            .filter_map(|id| this.payloads.remove(&id.0))
            .collect();
        this.rearm(sim);
        // Borrow of `this` ends here; payloads are dispatched against the
        // full world.
        for ev in payloads {
            world.dispatch(sim, ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_flow_runs_at_demand() {
        let mut net = FlowNet::new();
        let ddr = net.add_resource("ddr", 2.0);
        let t0 = SimTime::ZERO;
        net.start(t0, &[ddr], 2_000, 100.0); // capped by resource
        let eta = net.next_completion(t0).unwrap();
        assert_eq!(eta.as_ns(), 1_000);
        let done = net.take_finished(eta);
        assert_eq!(done.len(), 1);
        assert!((net.delivered_bytes(ddr) - 2_000.0).abs() < 1.0);
    }

    #[test]
    fn demand_caps_below_capacity() {
        let mut net = FlowNet::new();
        let ddr = net.add_resource("ddr", 6.2);
        net.start(SimTime::ZERO, &[ddr], 1_000, 1.0); // 1 GB/s demand
        let eta = net.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(eta.as_ns(), 1_000);
    }

    #[test]
    fn two_flows_share_equally() {
        let mut net = FlowNet::new();
        let ddr = net.add_resource("ddr", 4.0);
        net.start(SimTime::ZERO, &[ddr], 4_000, 100.0);
        net.start(SimTime::ZERO, &[ddr], 4_000, 100.0);
        // Each runs at 2 GB/s => 2000 ns.
        let eta = net.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(eta.as_ns(), 2_000);
        assert_eq!(net.take_finished(eta).len(), 2);
    }

    #[test]
    fn departure_speeds_up_survivor() {
        let mut net = FlowNet::new();
        let ddr = net.add_resource("ddr", 4.0);
        net.start(SimTime::ZERO, &[ddr], 2_000, 100.0); // finishes first
        net.start(SimTime::ZERO, &[ddr], 4_000, 100.0);
        let t1 = net.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(t1.as_ns(), 1_000); // 2000 bytes at 2 GB/s
        assert_eq!(net.take_finished(t1).len(), 1);
        // Survivor has 2000 bytes left, now at full 4 GB/s: +500 ns.
        let t2 = net.next_completion(t1).unwrap();
        assert_eq!(t2.as_ns(), 1_500);
    }

    #[test]
    fn multi_resource_flow_is_bottlenecked() {
        let mut net = FlowNet::new();
        let slow = net.add_resource("ddr", 6.0);
        let fast = net.add_resource("sram", 24.0);
        let engine = net.add_resource("edma", 5.0);
        net.start(SimTime::ZERO, &[slow, fast, engine], 5_000, 100.0);
        let eta = net.next_completion(SimTime::ZERO).unwrap();
        assert_eq!(eta.as_ns(), 1_000, "bottlenecked by the 5 GB/s engine");
    }

    #[test]
    fn cancel_returns_unmoved_bytes() {
        let mut net = FlowNet::new();
        let ddr = net.add_resource("ddr", 1.0);
        let id = net.start(SimTime::ZERO, &[ddr], 1_000, 100.0);
        let left = net.cancel(SimTime::from_ns(400), id).unwrap();
        assert_eq!(left, 600);
        assert!(net.next_completion(SimTime::from_ns(400)).is_none());
        assert_eq!(net.cancel(SimTime::from_ns(400), id), None);
    }

    #[test]
    fn capacity_change_rescales_progress() {
        let mut net = FlowNet::new();
        let ddr = net.add_resource("ddr", 2.0);
        assert_eq!(net.capacity(ddr), 2.0);
        net.start(SimTime::ZERO, &[ddr], 4_000, 100.0);
        // Halve the capacity after 1000 ns (2000 bytes done).
        net.set_capacity(SimTime::from_ns(1_000), ddr, 1.0);
        assert_eq!(net.capacity(ddr), 1.0);
        // Remaining 2000 bytes at 1 GB/s: completes at t=3000.
        let eta = net.next_completion(SimTime::from_ns(1_000)).unwrap();
        assert_eq!(eta.as_ns(), 3_000);
    }

    // ---- FlowSystem / DES coupling ----

    struct World {
        flows: FlowSystem<World>,
        completions: Vec<(u64, u64)>, // (flow tag, completion ns)
        chain_resource: Option<ResourceId>,
    }

    enum Ev {
        FlowTick,
        Done(u64),
        DoneThenStart(u64),
        Cancel(FlowId),
        SetCapacity(ResourceId, f64),
    }

    impl EventWorld for World {
        type Event = Ev;
        fn dispatch(&mut self, sim: &mut Sim<Self>, event: Ev) {
            match event {
                Ev::FlowTick => FlowSystem::on_tick(self, sim, |w| &mut w.flows),
                Ev::Done(tag) => self.completions.push((tag, sim.now().as_ns())),
                Ev::DoneThenStart(tag) => {
                    self.completions.push((tag, sim.now().as_ns()));
                    let ddr = self.chain_resource.expect("chain resource set");
                    self.flows
                        .start_flow(sim, &[ddr], 500, 100.0, Ev::Done(tag + 1));
                }
                Ev::Cancel(id) => {
                    let left = self.flows.cancel_flow(sim, id);
                    assert_eq!(left, Some(900));
                }
                Ev::SetCapacity(r, gbps) => self.flows.set_capacity(sim, r, gbps),
            }
        }
    }

    fn world() -> World {
        World {
            flows: FlowSystem::new(|| Ev::FlowTick),
            completions: Vec::new(),
            chain_resource: None,
        }
    }

    #[test]
    fn system_fires_completions_through_des() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = world();
        let ddr = w.flows.add_resource("ddr", 2.0);
        w.flows
            .start_flow(&mut sim, &[ddr], 2_000, 100.0, Ev::Done(1));
        w.flows
            .start_flow(&mut sim, &[ddr], 4_000, 100.0, Ev::Done(2));
        sim.run(&mut w);
        // Flow 1: shares 1 GB/s until t=2000 (2000 bytes done).
        // Flow 2: 2000 bytes left at t=2000, then 2 GB/s => t=3000.
        assert_eq!(w.completions, vec![(1, 2_000), (2, 3_000)]);
    }

    #[test]
    fn system_cancel_drops_payload() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = world();
        let ddr = w.flows.add_resource("ddr", 1.0);
        let id = w
            .flows
            .start_flow(&mut sim, &[ddr], 1_000, 100.0, Ev::Done(9));
        sim.schedule_at(SimTime::from_ns(100), Ev::Cancel(id));
        sim.run(&mut w);
        assert!(w.completions.is_empty());
    }

    #[test]
    fn system_capacity_change_reschedules_timer() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = world();
        let ddr = w.flows.add_resource("ddr", 2.0);
        w.flows
            .start_flow(&mut sim, &[ddr], 4_000, 100.0, Ev::Done(1));
        // Brownout at t=1000 (half speed), recovery at t=2000.
        sim.schedule_at(SimTime::from_ns(1_000), Ev::SetCapacity(ddr, 1.0));
        sim.schedule_at(SimTime::from_ns(2_000), Ev::SetCapacity(ddr, 2.0));
        sim.run(&mut w);
        // 2000 bytes by t=1000, 1000 more by t=2000, last 1000 at 2 GB/s.
        assert_eq!(w.completions, vec![(1, 2_500)]);
    }

    #[test]
    fn completion_payload_can_start_flows() {
        let mut sim: Sim<World> = Sim::new();
        let mut w = world();
        let ddr = w.flows.add_resource("ddr", 1.0);
        w.chain_resource = Some(ddr);
        w.flows
            .start_flow(&mut sim, &[ddr], 500, 100.0, Ev::DoneThenStart(1));
        sim.run(&mut w);
        assert_eq!(w.completions, vec![(1, 500), (2, 1_000)]);
    }
}
