//! Transfer-controller scheduling.
//!
//! The EDMA3 moves data through several *transfer controllers* (TCs),
//! each an independent read/write pipeline with its own port onto the
//! memory fabric. The paper's prototype drives the engine through one
//! implicit controller; [`TcScheduler`] generalizes that into N
//! *channels*, each backed by its own bandwidth resource in the flow
//! network, so concurrent transfers on different controllers no longer
//! serialize behind a single engine-wide capacity.
//!
//! The scheduler is generic over the ticket type `T` carried by queued
//! launches (the driver uses `(DeviceId, token)`), keeping this layer
//! free of any world type. Admission is two-level:
//!
//! * a **global cap** models the fixed number of hardware controllers —
//!   at most `cap` transfers run engine-wide, matching the pre-TC
//!   `tc_active` counter exactly when one channel is configured;
//! * **least-loaded routing** picks the channel with the fewest active
//!   transfers (ties break to the lowest index, keeping runs
//!   deterministic), and a launch arriving at the cap queues FIFO on the
//!   channel it would have used.

use std::collections::VecDeque;

use crate::flow::ResourceId;

#[derive(Debug)]
struct Channel<T> {
    resource: ResourceId,
    active: usize,
    waiting: VecDeque<T>,
}

/// Routes transfer launches onto N transfer-controller channels.
#[derive(Debug)]
pub struct TcScheduler<T> {
    channels: Vec<Channel<T>>,
    cap: usize,
    active: usize,
}

impl<T> TcScheduler<T> {
    /// A scheduler admitting at most `cap` concurrent transfers
    /// engine-wide (the hardware controller count). Channels are added
    /// with [`TcScheduler::add_channel`].
    #[must_use]
    pub fn new(cap: usize) -> Self {
        TcScheduler {
            channels: Vec::new(),
            cap: cap.max(1),
            active: 0,
        }
    }

    /// Registers a channel backed by `resource` (its share of the
    /// fabric); returns the channel index.
    pub fn add_channel(&mut self, resource: ResourceId) -> usize {
        self.channels.push(Channel {
            resource,
            active: 0,
            waiting: VecDeque::new(),
        });
        self.channels.len() - 1
    }

    /// Number of configured channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// The bandwidth resource behind channel `tc`.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range channel index.
    #[must_use]
    pub fn resource(&self, tc: usize) -> ResourceId {
        self.channels[tc].resource
    }

    /// Transfers currently admitted (engine-wide).
    #[must_use]
    pub fn active(&self) -> usize {
        self.active
    }

    /// Drops all volatile scheduler state after a simulated crash:
    /// active counts go to zero and every queued launch ticket is
    /// discarded. Channel registrations (the hardware) survive.
    pub fn reset_volatile(&mut self) {
        self.active = 0;
        for c in &mut self.channels {
            c.active = 0;
            c.waiting.clear();
        }
    }

    /// Launch-ready transfers queued for a free controller.
    #[must_use]
    pub fn waiting(&self) -> usize {
        self.channels.iter().map(|c| c.waiting.len()).sum()
    }

    /// Transfers running on channel `tc` right now.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range channel index.
    #[must_use]
    pub fn channel_active(&self, tc: usize) -> usize {
        self.channels[tc].active
    }

    /// The channel least-loaded routing would pick next (lowest active
    /// count, ties to the lowest index).
    ///
    /// # Panics
    ///
    /// Panics if no channel has been added.
    #[must_use]
    pub fn least_loaded(&self) -> usize {
        assert!(!self.channels.is_empty(), "no TC channels configured");
        let mut best = 0;
        for (i, c) in self.channels.iter().enumerate().skip(1) {
            if c.active < self.channels[best].active {
                best = i;
            }
        }
        best
    }

    /// Tries to admit a transfer: returns `Some(channel)` and occupies a
    /// controller slot, or queues `ticket` on the least-loaded channel
    /// and returns `None` when all controllers are busy.
    ///
    /// # Panics
    ///
    /// Panics if no channel has been added.
    pub fn admit(&mut self, ticket: T) -> Option<usize> {
        let tc = self.least_loaded();
        if self.active >= self.cap {
            self.channels[tc].waiting.push_back(ticket);
            return None;
        }
        self.active += 1;
        self.channels[tc].active += 1;
        Some(tc)
    }

    /// Releases the controller slot a transfer held on channel `tc` and
    /// pops the next queued ticket, if any, for the caller to relaunch
    /// (relaunching re-runs admission, so the popped ticket may land on
    /// a different, now least-loaded channel).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range channel index.
    pub fn release(&mut self, tc: usize) -> Option<T> {
        self.active = self.active.saturating_sub(1);
        self.channels[tc].active = self.channels[tc].active.saturating_sub(1);
        self.take_waiting()
    }

    /// Pops a queued ticket without releasing a slot — used when an
    /// admitted launch turns out to be stale (its request was aborted
    /// before the launch event ran) and its slot should go to whoever is
    /// waiting. Drains the channel with the longest queue first (ties to
    /// the lowest index).
    pub fn take_waiting(&mut self) -> Option<T> {
        let mut best: Option<usize> = None;
        for (i, c) in self.channels.iter().enumerate() {
            if c.waiting.is_empty() {
                continue;
            }
            match best {
                Some(b) if self.channels[b].waiting.len() >= c.waiting.len() => {}
                _ => best = Some(i),
            }
        }
        best.and_then(|i| self.channels[i].waiting.pop_front())
    }

    /// Removes every queued ticket matching `pred` (abort of a request
    /// that never reached a controller).
    pub fn cancel_waiting(&mut self, mut pred: impl FnMut(&T) -> bool) {
        for c in &mut self.channels {
            c.waiting.retain(|t| !pred(t));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowNet;

    fn resources(n: usize) -> Vec<ResourceId> {
        let mut net = FlowNet::new();
        (0..n)
            .map(|i| net.add_resource(format!("tc{i}"), 3.0))
            .collect()
    }

    #[test]
    fn single_channel_behaves_like_a_counter() {
        let rs = resources(1);
        let mut tc: TcScheduler<u64> = TcScheduler::new(2);
        tc.add_channel(rs[0]);
        assert_eq!(tc.admit(0), Some(0));
        assert_eq!(tc.admit(1), Some(0));
        // At the cap: queues FIFO.
        assert_eq!(tc.admit(2), None);
        assert_eq!(tc.admit(3), None);
        assert_eq!(tc.waiting(), 2);
        assert_eq!(tc.release(0), Some(2));
        assert_eq!(tc.release(0), Some(3));
        assert_eq!(tc.release(0), None);
        assert_eq!(tc.active(), 0);
    }

    #[test]
    fn least_loaded_routing_spreads_transfers() {
        let rs = resources(3);
        let mut tc: TcScheduler<u64> = TcScheduler::new(6);
        for r in &rs {
            tc.add_channel(*r);
        }
        assert_eq!(tc.admit(0), Some(0));
        assert_eq!(tc.admit(1), Some(1), "channel 0 is busier");
        assert_eq!(tc.admit(2), Some(2));
        assert_eq!(tc.admit(3), Some(0), "ties break to the lowest index");
        // Freeing channel 1 makes it least loaded again.
        assert!(tc.release(1).is_none());
        assert_eq!(tc.admit(4), Some(1));
        assert_eq!(tc.channel_active(0), 2);
        assert_eq!(tc.channel_active(1), 1);
    }

    #[test]
    fn cap_is_global_across_channels() {
        let rs = resources(4);
        let mut tc: TcScheduler<u64> = TcScheduler::new(2);
        for r in &rs {
            tc.add_channel(*r);
        }
        assert_eq!(tc.admit(0), Some(0));
        assert_eq!(tc.admit(1), Some(1));
        assert_eq!(tc.admit(2), None, "only two controllers exist");
        assert_eq!(tc.active(), 2);
    }

    #[test]
    fn cancel_waiting_drops_matching_tickets() {
        let rs = resources(2);
        let mut tc: TcScheduler<u64> = TcScheduler::new(1);
        tc.add_channel(rs[0]);
        tc.add_channel(rs[1]);
        assert_eq!(tc.admit(0), Some(0));
        assert_eq!(tc.admit(1), None);
        assert_eq!(tc.admit(2), None);
        tc.cancel_waiting(|t| *t == 1);
        assert_eq!(tc.waiting(), 1);
        assert_eq!(tc.release(0), Some(2));
    }

    #[test]
    fn take_waiting_drains_longest_queue_first() {
        let rs = resources(2);
        let mut tc: TcScheduler<u64> = TcScheduler::new(2);
        tc.add_channel(rs[0]);
        tc.add_channel(rs[1]);
        assert_eq!(tc.admit(10), Some(0));
        assert_eq!(tc.admit(11), Some(1));
        // All three queue on channel 0 (active counts tie at 1-1, so the
        // lowest index wins every time).
        assert_eq!(tc.admit(20), None);
        assert_eq!(tc.admit(21), None);
        assert_eq!(tc.admit(22), None);
        let first = tc.take_waiting().unwrap();
        assert_eq!(first, 20, "longest queue drains first, FIFO within it");
    }
}
