//! The DMA engine: descriptor programming and transfer execution.
//!
//! Configuration is a CPU-side activity (the driver writes PaRAM fields
//! through uncached I/O space); execution is engine-side (descriptors are
//! walked, bytes move, a completion interrupt fires). Accordingly
//! [`DmaEngine::configure`] mutates engine state and *returns the CPU
//! cost* for the caller to charge, while [`DmaEngine::launch`] rolls the
//! transfer's fate and returns a [`LaunchTicket`] describing the flow the
//! caller must start and how the completion interrupt will be delivered.
//! The engine knows nothing about the caller's world type: completions
//! come back as typed data ([`DmaOutcome`] via [`CompletionDelivery`]),
//! never as captured closures.
//!
//! Per §2.3 the engine is cache-coherent with the CPUs (no cache
//! maintenance needed around transfers) and supports scatter-gather
//! chaining. Memory-to-memory transfer — which the authors had to add to
//! the ported EDMA3 driver themselves (§6.1) — is the only mode
//! implemented. The sim is single-threaded, so the "couple of locks for
//! thread-safety" of §6.1 have no analogue here.

use std::collections::HashMap;

use crate::cost::CostModel;
use crate::dma::chain::{ChainError, ChainId, ChainManager, ChainPlan};
use crate::dma::param::{ParamSet, NULL_LINK, NUM_PARAM_SETS};
use crate::fault::{FaultInjector, FaultStats, TransferFault};
use crate::flow::FlowId;
use crate::phys::PhysAddr;
use crate::time::SimDuration;

/// One physically contiguous piece of a scatter-gather transfer (one
/// page, in memif's usage).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SgSegment {
    /// Physical source address.
    pub src: PhysAddr,
    /// Physical destination address.
    pub dst: PhysAddr,
    /// Bytes to move.
    pub bytes: u64,
}

/// A transfer that has been programmed into the PaRAM but not launched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfiguredTransfer {
    /// The chain carrying the transfer (busy until released).
    pub chain: ChainId,
    /// First descriptor of the chain.
    pub head: u16,
    /// Number of descriptors.
    pub descriptors: usize,
    /// Total bytes.
    pub bytes: u64,
    /// CPU cost of the configuration (to be charged by the caller).
    pub config_cost: SimDuration,
    /// Engine-side latency before/while walking the chain: trigger plus
    /// per-descriptor processing. This serialization is what keeps small-
    /// page DMA throughput below pin bandwidth.
    pub engine_overhead: SimDuration,
    /// The segments, in descriptor order (consumed at completion to
    /// perform the actual byte copies).
    pub segments: Vec<SgSegment>,
}

impl ConfiguredTransfer {
    /// How many leading segments an errored transfer fully moved before
    /// the engine stopped: descriptors are walked in chain order, so a
    /// mid-chain error at `bytes_done` leaves exactly the segments whose
    /// cumulative byte count fits inside `bytes_done` at their
    /// destinations. Batched issue uses this to attribute a failure to
    /// individual requests instead of the whole chain.
    #[must_use]
    pub fn segments_done(&self, bytes_done: u64) -> usize {
        let mut moved = 0u64;
        for (i, seg) in self.segments.iter().enumerate() {
            moved += seg.bytes;
            if moved > bytes_done {
                return i;
            }
        }
        self.segments.len()
    }
}

/// Counters of engine activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DmaStats {
    /// Transfers launched.
    pub transfers: u64,
    /// Transfers aborted before completion.
    pub aborted: u64,
    /// Transfers terminated by a mid-flight engine error.
    pub errors: u64,
    /// Bytes moved by completed transfers.
    pub bytes_moved: u64,
    /// Descriptors configured from scratch (12 field writes each).
    pub full_configs: u64,
    /// Descriptors reconfigured via reuse (src/dst rewrites only).
    pub reuse_configs: u64,
    /// Completion interrupts delivered (including error interrupts).
    pub interrupts: u64,
}

/// How a launched transfer ended, as carried by its completion event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaOutcome {
    /// The whole scatter-gather chain was walked; the bytes are at their
    /// destination.
    Completed,
    /// The engine raised an error interrupt partway through. No bytes
    /// are guaranteed at the destination; the caller passes the outcome
    /// to [`DmaEngine::complete`] and decides whether to retry.
    Error {
        /// Bytes the engine had moved before the error.
        bytes_done: u64,
    },
}

/// How (and whether) a launched transfer's completion interrupt reaches
/// the driver. Decided at launch time — with a [`FaultInjector`]
/// installed the fate may be an early error, a lost interrupt, or a late
/// one; without one it is always `Interrupt(Completed)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionDelivery {
    /// The completion (or error) interrupt fires the moment the flow
    /// drains: dispatch the completion event directly.
    Interrupt(DmaOutcome),
    /// The interrupt is delivered `delay` after the flow drains: schedule
    /// the completion event that much later.
    Delayed {
        /// The outcome the late interrupt reports.
        outcome: DmaOutcome,
        /// Injected interrupt latency.
        delay: SimDuration,
    },
    /// The interrupt is silently lost: the bytes arrive but the driver is
    /// never told. Only an external watchdog plus [`DmaEngine::abort`]
    /// can reclaim the transfer.
    Dropped,
}

/// What [`DmaEngine::launch`] hands back: the transfer identity, the flow
/// the caller must start on the fabric, and how the completion interrupt
/// will be delivered. The caller starts a flow of `flow_bytes` over its
/// chosen route, registers it with [`DmaEngine::attach_flow`], and
/// attaches a completion payload derived from `delivery`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "the caller must start the transfer's flow"]
pub struct LaunchTicket {
    /// The in-flight transfer's identity.
    pub id: TransferId,
    /// Bytes the fabric flow must carry: the payload (possibly truncated
    /// by an injected error) plus the engine-overhead-equivalent bytes.
    pub flow_bytes: u64,
    /// How the completion interrupt will be delivered.
    pub delivery: CompletionDelivery,
}

/// What [`DmaEngine::abort`] reclaimed: the fabric flow (if one was
/// attached and should be cancelled by the caller).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbortedTransfer {
    /// The transfer's fabric flow, still to be cancelled by the caller
    /// (the engine does not own the flow network).
    pub flow: Option<FlowId>,
}

/// The simulated EDMA3-class engine.
#[derive(Debug)]
pub struct DmaEngine {
    params: Vec<ParamSet>,
    chains: ChainManager,
    stats: DmaStats,
    in_flight: HashMap<u64, InFlight>,
    next_transfer: u64,
    /// Installed fault injector; `None` (the default) means the engine
    /// is perfectly reliable and the hot path pays nothing.
    injector: Option<FaultInjector>,
}

#[derive(Debug)]
struct InFlight {
    chain: ChainId,
    flow: Option<FlowId>,
    bytes: u64,
}

/// Handle to an in-flight transfer (for completion and abort).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TransferId(u64);

impl TransferId {
    /// The raw transfer number (stable within one engine; used by event
    /// logs).
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

impl Default for DmaEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl DmaEngine {
    /// An engine with the KeyStone II PaRAM capacity (512 descriptors).
    #[must_use]
    pub fn new() -> Self {
        Self::with_pool(NUM_PARAM_SETS)
    }

    /// An engine with a custom descriptor pool size.
    ///
    /// # Panics
    ///
    /// Panics on a zero or oversized pool.
    #[must_use]
    pub fn with_pool(pool: usize) -> Self {
        DmaEngine {
            params: vec![ParamSet::default(); pool],
            chains: ChainManager::new(pool),
            stats: DmaStats::default(),
            in_flight: HashMap::new(),
            next_transfer: 0,
            injector: None,
        }
    }

    /// Engine activity counters.
    #[must_use]
    pub fn stats(&self) -> DmaStats {
        self.stats
    }

    /// Installs a fault injector: subsequent configures and launches
    /// consult it. Replaces any previous injector.
    pub fn install_injector(&mut self, injector: FaultInjector) {
        self.injector = Some(injector);
    }

    /// The installed injector, if any.
    #[must_use]
    pub fn injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Mutable access to the installed injector (crash-point rolls).
    #[must_use]
    pub fn injector_mut(&mut self) -> Option<&mut FaultInjector> {
        self.injector.as_mut()
    }

    /// Drops all volatile engine state after a simulated crash: every
    /// in-flight transfer vanishes and its descriptor chain is released.
    /// Counters, the descriptor pool, the reuse cache, and the installed
    /// injector survive (they model simulation bookkeeping, not device
    /// RAM).
    pub fn reset_volatile(&mut self) {
        let chains: Vec<ChainId> = self.in_flight.drain().map(|(_, t)| t.chain).collect();
        for chain in chains {
            self.chains.release(chain);
        }
    }

    /// Injected-fault counters, if an injector is installed.
    #[must_use]
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.injector.as_ref().map(FaultInjector::stats)
    }

    /// Enables/disables descriptor-chain reuse (ablation A1).
    pub fn set_reuse_enabled(&mut self, enabled: bool) {
        self.chains.set_reuse_enabled(enabled);
    }

    /// Largest scatter-gather list a single transfer can carry.
    #[must_use]
    pub fn max_segments(&self) -> usize {
        self.params.len()
    }

    /// Inspects a descriptor (tests/diagnostics).
    #[must_use]
    pub fn param(&self, idx: u16) -> &ParamSet {
        &self.params[idx as usize]
    }

    /// Programs a scatter-gather transfer into the PaRAM.
    ///
    /// All segments must be the same size (memif dedicates one descriptor
    /// per page). Returns the configured transfer, whose `config_cost`
    /// the caller charges to the executing CPU context.
    ///
    /// # Errors
    ///
    /// * [`ChainError::Empty`] on an empty segment list and
    ///   [`ChainError::MixedSizes`] on non-uniform segment sizes —
    ///   malformed driver input must surface as an error, never a panic.
    /// * [`ChainError::TooLarge`] / [`ChainError::AllBusy`] when the
    ///   descriptor pool cannot serve the request. An installed
    ///   [`FaultInjector`] may also report `AllBusy` spuriously to model
    ///   transient PaRAM exhaustion by other tenants.
    pub fn configure(
        &mut self,
        segments: Vec<SgSegment>,
        cost: &CostModel,
    ) -> Result<ConfiguredTransfer, ChainError> {
        let Some(first) = segments.first() else {
            return Err(ChainError::Empty);
        };
        let per = first.bytes;
        if segments.iter().any(|s| s.bytes != per) {
            return Err(ChainError::MixedSizes);
        }
        if let Some(inj) = &mut self.injector {
            if inj.roll_configure() {
                return Err(ChainError::AllBusy);
            }
        }
        let plan = self.chains.plan(segments.len(), per)?;
        let config_cost = self.apply(&plan, &segments, cost);
        let head = plan.descriptors().next().ok_or(ChainError::Empty)?;
        let bytes = per * segments.len() as u64;
        Ok(ConfiguredTransfer {
            chain: plan.chain,
            head,
            descriptors: segments.len(),
            bytes,
            config_cost,
            engine_overhead: cost.dma_trigger + cost.dma_per_desc_engine * segments.len() as u64,
            segments,
        })
    }

    /// Programs a scatter-gather transfer whose segments may differ in
    /// size — the coalesced issue path, where physically contiguous pages
    /// have been merged into larger descriptors. A uniform segment list
    /// behaves byte-for-byte like [`DmaEngine::configure`]; a mixed list
    /// is carried by a geometry-keyed chain (see
    /// [`ChainManager::plan_segments`]). Descriptor-write cost is charged
    /// per *merged* descriptor: a 256-page contiguous transfer coalesced
    /// into one segment pays for one descriptor, not 256.
    ///
    /// # Errors
    ///
    /// As for [`DmaEngine::configure`], minus `MixedSizes` (mixed sizes
    /// are the point).
    pub fn configure_segments(
        &mut self,
        segments: Vec<SgSegment>,
        cost: &CostModel,
    ) -> Result<ConfiguredTransfer, ChainError> {
        if segments.is_empty() {
            return Err(ChainError::Empty);
        }
        if let Some(inj) = &mut self.injector {
            if inj.roll_configure() {
                return Err(ChainError::AllBusy);
            }
        }
        let sizes: Vec<u64> = segments.iter().map(|s| s.bytes).collect();
        let plan = self.chains.plan_segments(&sizes)?;
        let config_cost = self.apply(&plan, &segments, cost);
        let head = plan.descriptors().next().ok_or(ChainError::Empty)?;
        Ok(ConfiguredTransfer {
            chain: plan.chain,
            head,
            descriptors: segments.len(),
            bytes: sizes.iter().sum(),
            config_cost,
            engine_overhead: cost.dma_trigger + cost.dma_per_desc_engine * segments.len() as u64,
            segments,
        })
    }

    fn apply(&mut self, plan: &ChainPlan, segments: &[SgSegment], cost: &CostModel) -> SimDuration {
        let mut total = SimDuration::ZERO;
        let descs: Vec<u16> = plan.descriptors().collect();
        for (i, (&idx, seg)) in descs.iter().zip(segments).enumerate() {
            let link = if i + 1 < descs.len() {
                descs[i + 1]
            } else {
                NULL_LINK
            };
            let slot = &mut self.params[idx as usize];
            if i < plan.reused.len() && slot.total_bytes() == seg.bytes && slot.link == link {
                // Reused descriptor: geometry and link already correct —
                // "only needs to overwrite the source and destination
                // fields" (§5.3).
                slot.src = seg.src;
                slot.dst = seg.dst;
                total += cost.desc_config_reuse();
                self.stats.reuse_configs += 1;
            } else {
                let mut fresh = ParamSet::contiguous(seg.src, seg.dst, seg.bytes);
                fresh.link = link;
                *slot = fresh;
                total += cost.desc_config_full();
                self.stats.full_configs += 1;
            }
        }
        total
    }

    /// Launches a configured transfer: rolls its fate against the
    /// installed [`FaultInjector`] (if any) and returns a
    /// [`LaunchTicket`].
    ///
    /// The engine knows nothing about the caller's world type or flow
    /// network: the caller starts a fabric flow of `ticket.flow_bytes` at
    /// `demand_gbps` over its chosen route, attaches a typed completion
    /// payload derived from `ticket.delivery`, and registers the flow via
    /// [`DmaEngine::attach_flow`]. When the completion event is
    /// dispatched, the caller performs the byte copies and retires the
    /// transfer through [`DmaEngine::complete`] (every terminal path —
    /// complete, error, abort — releases the chain exactly once).
    ///
    /// The engine overhead is modeled as equivalent bytes at the
    /// transfer's demand rate, so chained descriptors serialize inside
    /// the flow without a separate timer.
    pub fn launch(&mut self, transfer: &ConfiguredTransfer, demand_gbps: f64) -> LaunchTicket {
        let id = TransferId(self.next_transfer);
        self.next_transfer += 1;
        self.stats.transfers += 1;
        let overhead_bytes = (transfer.engine_overhead.as_ns() as f64 * demand_gbps) as u64;
        let fault = match &mut self.injector {
            Some(inj) => inj.roll_transfer(transfer.bytes),
            None => TransferFault::None,
        };
        let (flow_bytes, delivery) = match fault {
            TransferFault::None => (
                transfer.bytes + overhead_bytes,
                CompletionDelivery::Interrupt(DmaOutcome::Completed),
            ),
            TransferFault::Error { bytes_done } => (
                bytes_done + overhead_bytes,
                CompletionDelivery::Interrupt(DmaOutcome::Error { bytes_done }),
            ),
            TransferFault::DropCompletion => {
                // The transfer runs to completion on the fabric, but the
                // interrupt is lost: nobody is told.
                (transfer.bytes + overhead_bytes, CompletionDelivery::Dropped)
            }
            TransferFault::DelayCompletion(delay) => (
                transfer.bytes + overhead_bytes,
                CompletionDelivery::Delayed {
                    outcome: DmaOutcome::Completed,
                    delay,
                },
            ),
        };
        self.in_flight.insert(
            id.0,
            InFlight {
                chain: transfer.chain,
                flow: None,
                bytes: transfer.bytes,
            },
        );
        LaunchTicket {
            id,
            flow_bytes,
            delivery,
        }
    }

    /// Records the fabric flow carrying transfer `id`, so a later
    /// [`DmaEngine::abort`] can hand it back for cancellation.
    pub fn attach_flow(&mut self, id: TransferId, flow: FlowId) {
        if let Some(t) = self.in_flight.get_mut(&id.0) {
            t.flow = Some(flow);
        }
    }

    /// Retires a transfer on its completion interrupt — the single
    /// terminal path for both successful and errored transfers. Releases
    /// the chain (exactly once) and counts statistics according to
    /// `outcome`. Returns `false` if the transfer was no longer in flight
    /// (already aborted or already completed), in which case nothing is
    /// released.
    pub fn complete(&mut self, id: TransferId, outcome: DmaOutcome) -> bool {
        match self.in_flight.remove(&id.0) {
            Some(t) => {
                match outcome {
                    DmaOutcome::Completed => self.stats.bytes_moved += t.bytes,
                    DmaOutcome::Error { .. } => self.stats.errors += 1,
                }
                self.stats.interrupts += 1;
                self.chains.release(t.chain);
                true
            }
            None => false,
        }
    }

    /// Aborts an in-flight transfer ("drops the outstanding DMA
    /// transfer", §5.2 proceed-and-recover; also the watchdog's reclaim
    /// path for lost interrupts). The completion event, if it still
    /// fires, finds the transfer gone and [`DmaEngine::complete`] becomes
    /// a no-op — the chain is never released twice. Returns the attached
    /// fabric flow for the caller to cancel, or `None` if the transfer
    /// was not in flight.
    pub fn abort(&mut self, id: TransferId) -> Option<AbortedTransfer> {
        match self.in_flight.remove(&id.0) {
            Some(t) => {
                self.chains.release(t.chain);
                self.stats.aborted += 1;
                Some(AbortedTransfer { flow: t.flow })
            }
            None => None,
        }
    }

    /// Read access to the chain manager (diagnostics).
    #[must_use]
    pub fn chains(&self) -> &ChainManager {
        &self.chains
    }

    /// Releases a configured-but-never-launched chain back to idle (the
    /// launch/finish path does this automatically for real transfers).
    pub fn release_chain(&mut self, chain: ChainId) {
        self.chains.release(chain);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{FlowSystem, ResourceId};
    use crate::phys::PhysMem;
    use crate::sim::{EventWorld, Sim};
    use crate::time::SimTime;

    fn seg(i: u64) -> SgSegment {
        SgSegment {
            src: PhysAddr::new(0x1_0000 + i * 4096),
            dst: PhysAddr::new(0x8_0000 + i * 4096),
            bytes: 4096,
        }
    }

    #[test]
    fn configure_costs_match_reuse_state() {
        let cm = CostModel::keystone_ii();
        let mut e = DmaEngine::with_pool(32);
        let t1 = e.configure((0..4).map(seg).collect(), &cm).unwrap();
        assert_eq!(t1.config_cost, cm.desc_config_full() * 4);
        assert_eq!(t1.descriptors, 4);
        assert_eq!(t1.bytes, 4 * 4096);
        e.finish_for_test(t1.chain);
        let t2 = e.configure((4..8).map(seg).collect(), &cm).unwrap();
        assert_eq!(
            t2.config_cost,
            cm.desc_config_reuse() * 4,
            "4× cheaper on reuse"
        );
        assert_eq!(e.stats().full_configs, 4);
        assert_eq!(e.stats().reuse_configs, 4);
    }

    #[test]
    fn descriptors_are_linked_in_order() {
        let cm = CostModel::keystone_ii();
        let mut e = DmaEngine::with_pool(8);
        let t = e.configure((0..3).map(seg).collect(), &cm).unwrap();
        let descs: Vec<u16> = {
            // Walk the chain from head via link fields.
            let mut v = vec![t.head];
            loop {
                let link = e.param(*v.last().unwrap()).link;
                if link == NULL_LINK {
                    break;
                }
                v.push(link);
            }
            v
        };
        assert_eq!(descs.len(), 3);
        assert_eq!(e.param(descs[0]).src, seg(0).src);
        assert_eq!(e.param(descs[2]).dst, seg(2).dst);
    }

    struct World {
        flows: FlowSystem<World>,
        dma: DmaEngine,
        phys: PhysMem,
        done_at: Option<u64>,
        copies: Vec<SgSegment>,
        expect_error: bool,
    }

    #[derive(Debug, Clone, Copy)]
    enum Ev {
        FlowTick,
        DmaDone(TransferId, DmaOutcome),
        DmaLate(TransferId, DmaOutcome, SimDuration),
        IrqLost,
        Abort(TransferId),
        AbortKeepFlow(TransferId),
    }

    impl EventWorld for World {
        type Event = Ev;
        fn dispatch(&mut self, sim: &mut Sim<Self>, event: Ev) {
            match event {
                Ev::FlowTick => FlowSystem::on_tick(self, sim, |w| &mut w.flows),
                Ev::DmaDone(id, outcome) => {
                    if self.expect_error {
                        assert!(
                            matches!(outcome, DmaOutcome::Error { bytes_done } if bytes_done < 4 * 4096)
                        );
                    }
                    if matches!(outcome, DmaOutcome::Completed) {
                        let copies = std::mem::take(&mut self.copies);
                        for sg in &copies {
                            self.phys.copy(sg.src, sg.dst, sg.bytes);
                        }
                    }
                    if self.dma.complete(id, outcome) {
                        self.done_at = Some(sim.now().as_ns());
                    }
                }
                Ev::DmaLate(id, outcome, delay) => {
                    sim.schedule_after(delay, Ev::DmaDone(id, outcome));
                }
                Ev::IrqLost => {}
                Ev::Abort(id) => {
                    let aborted = self.dma.abort(id).expect("still in flight");
                    if let Some(f) = aborted.flow {
                        self.flows.cancel_flow(sim, f);
                    }
                    assert!(self.dma.abort(id).is_none(), "second abort is a no-op");
                }
                Ev::AbortKeepFlow(id) => {
                    // Simulates the watchdog racing a late interrupt: the
                    // transfer is reclaimed but its flow (already drained)
                    // is left alone.
                    assert!(self.dma.abort(id).is_some());
                }
            }
        }
    }

    fn world(pool: usize) -> World {
        World {
            flows: FlowSystem::new(|| Ev::FlowTick),
            dma: DmaEngine::with_pool(pool),
            phys: PhysMem::new(),
            done_at: None,
            copies: Vec::new(),
            expect_error: false,
        }
    }

    /// Starts the transfer's flow with the payload its delivery demands —
    /// what the memif driver does with a ticket.
    fn launch(
        w: &mut World,
        sim: &mut Sim<World>,
        route: &[ResourceId],
        t: &ConfiguredTransfer,
        demand: f64,
    ) -> TransferId {
        let ticket = w.dma.launch(t, demand);
        let payload = match ticket.delivery {
            CompletionDelivery::Interrupt(outcome) => Ev::DmaDone(ticket.id, outcome),
            CompletionDelivery::Delayed { outcome, delay } => {
                Ev::DmaLate(ticket.id, outcome, delay)
            }
            CompletionDelivery::Dropped => Ev::IrqLost,
        };
        let flow = w
            .flows
            .start_flow(sim, route, ticket.flow_bytes, demand, payload);
        w.dma.attach_flow(ticket.id, flow);
        ticket.id
    }

    #[test]
    fn launch_moves_bytes_at_completion() {
        let cm = CostModel::keystone_ii();
        let mut sim: Sim<World> = Sim::new();
        let mut w = world(16);
        let ddr = w.flows.add_resource("ddr", 6.2);
        w.phys.fill(seg(0).src, 4096, 0x77);

        let t = w.dma.configure(vec![seg(0)], &cm).unwrap();
        w.copies = t.segments.clone();
        launch(&mut w, &mut sim, &[ddr], &t, 5.8);
        sim.run(&mut w);
        assert!(w.done_at.is_some());
        assert_eq!(
            w.phys.read_u8(seg(0).dst),
            0x77,
            "bytes arrive at completion"
        );
        assert_eq!(w.dma.stats().bytes_moved, 4096);
        assert_eq!(w.dma.stats().interrupts, 1);
        // Chain released: a follow-up transfer reuses it.
        let t2 = w.dma.configure(vec![seg(1)], &cm).unwrap();
        assert_eq!(t2.config_cost, cm.desc_config_reuse());
    }

    #[test]
    fn completion_time_includes_engine_overhead() {
        let cm = CostModel::keystone_ii();
        let mut sim: Sim<World> = Sim::new();
        let mut w = world(16);
        let ddr = w.flows.add_resource("ddr", 8.0);
        let t = w.dma.configure((0..4).map(seg).collect(), &cm).unwrap();
        let expected_overhead = cm.dma_trigger + cm.dma_per_desc_engine * 4;
        assert_eq!(t.engine_overhead, expected_overhead);
        launch(&mut w, &mut sim, &[ddr], &t, 4.0);
        sim.run(&mut w);
        // 16384 bytes at 4 GB/s = 4096 ns, plus overhead-equivalent bytes.
        let done = w.done_at.unwrap();
        let pure = 16_384 / 4;
        assert!(done > pure, "overhead lengthens the transfer");
        let with_overhead = pure + expected_overhead.as_ns();
        assert!(
            done.abs_diff(with_overhead) <= 2,
            "expected ≈{with_overhead}, got {done}"
        );
    }

    #[test]
    fn abort_cancels_flow_and_skips_completion() {
        let cm = CostModel::keystone_ii();
        let mut sim: Sim<World> = Sim::new();
        let mut w = world(16);
        let ddr = w.flows.add_resource("ddr", 1.0);
        let t = w.dma.configure(vec![seg(0)], &cm).unwrap();
        let id = launch(&mut w, &mut sim, &[ddr], &t, 1.0);
        sim.schedule_at(SimTime::from_ns(10), Ev::Abort(id));
        sim.run(&mut w);
        assert!(w.done_at.is_none(), "completion event never dispatched");
        assert_eq!(w.dma.stats().aborted, 1);
        assert_eq!(w.dma.stats().bytes_moved, 0);
        // The chain was released by the abort; reuse works afterwards.
        let t2 = w.dma.configure(vec![seg(1)], &cm).unwrap();
        assert_eq!(t2.config_cost, cm.desc_config_reuse());
    }

    #[test]
    fn late_completion_after_abort_releases_exactly_once() {
        // A transfer reclaimed by the watchdog while its (delayed)
        // completion interrupt is still in the queue: the late interrupt
        // finds the transfer gone and must not release the chain a second
        // time or double-count statistics.
        let cm = CostModel::keystone_ii();
        let mut sim: Sim<World> = Sim::new();
        let mut w = world(16);
        let ddr = w.flows.add_resource("ddr", 6.2);
        let t = w.dma.configure(vec![seg(0)], &cm).unwrap();
        let id = launch(&mut w, &mut sim, &[ddr], &t, 4.0);
        // Reclaim while the flow is still running, but leave the flow (and
        // therefore the pending completion event) in place.
        sim.schedule_at(SimTime::from_ns(10), Ev::AbortKeepFlow(id));
        sim.run(&mut w);
        assert!(w.done_at.is_none(), "complete() after abort is a no-op");
        assert_eq!(w.dma.stats().aborted, 1);
        assert_eq!(w.dma.stats().interrupts, 0);
        assert_eq!(w.dma.stats().bytes_moved, 0);
        assert_eq!(w.dma.chains().busy_descriptors(), 0, "released once");
        // The pool is healthy: the chain is reusable.
        let t2 = w.dma.configure(vec![seg(1)], &cm).unwrap();
        assert_eq!(t2.config_cost, cm.desc_config_reuse());
    }

    #[test]
    fn malformed_sg_lists_are_errors_not_panics() {
        let cm = CostModel::keystone_ii();
        let mut e = DmaEngine::with_pool(8);
        assert_eq!(e.configure(Vec::new(), &cm), Err(ChainError::Empty));
        let mut segs: Vec<SgSegment> = (0..2).map(seg).collect();
        segs[1].bytes = 8192;
        assert_eq!(e.configure(segs, &cm), Err(ChainError::MixedSizes));
        // An oversized list propagates the pool error rather than
        // asserting.
        let r = e.configure((0..9).map(seg).collect(), &cm);
        assert!(matches!(
            r,
            Err(ChainError::TooLarge {
                requested: 9,
                pool: 8
            })
        ));
        // The pool is untouched by any of the rejections.
        assert_eq!(e.chains().free_descriptors(), 8);
    }

    #[test]
    fn injected_error_delivers_error_outcome_and_complete_releases() {
        use crate::fault::{FaultInjector, FaultPlan};
        let cm = CostModel::keystone_ii();
        let mut sim: Sim<World> = Sim::new();
        let mut w = world(16);
        w.expect_error = true;
        let ddr = w.flows.add_resource("ddr", 6.2);
        w.dma
            .install_injector(FaultInjector::new(FaultPlan::dma_errors(9, 1.0)));
        let t = w.dma.configure((0..4).map(seg).collect(), &cm).unwrap();
        launch(&mut w, &mut sim, &[ddr], &t, 4.0);
        sim.run(&mut w);
        assert!(w.done_at.is_some(), "error interrupt was delivered");
        assert_eq!(w.dma.stats().errors, 1);
        assert_eq!(w.dma.stats().bytes_moved, 0);
        assert_eq!(w.dma.fault_stats().unwrap().dma_errors, 1);
        // The chain was released; a follow-up configure succeeds (no
        // injected exhaustion in this plan).
        assert_eq!(w.dma.chains().busy_descriptors(), 0);
    }

    #[test]
    fn dropped_completion_never_fires_until_aborted() {
        use crate::fault::{FaultInjector, FaultPlan};
        let cm = CostModel::keystone_ii();
        let mut sim: Sim<World> = Sim::new();
        let mut w = world(16);
        let ddr = w.flows.add_resource("ddr", 6.2);
        w.dma.install_injector(FaultInjector::new(FaultPlan {
            seed: 1,
            drop_rate: 1.0,
            ..FaultPlan::default()
        }));
        let t = w.dma.configure(vec![seg(0)], &cm).unwrap();
        let id = launch(&mut w, &mut sim, &[ddr], &t, 4.0);
        sim.run(&mut w);
        assert!(w.done_at.is_none(), "completion interrupt was dropped");
        assert_eq!(w.dma.chains().busy_descriptors(), 1, "chain still held");
        // A watchdog-style abort reclaims the chain (the flow has already
        // drained, so there is nothing left to cancel).
        assert!(w.dma.abort(id).is_some());
        assert_eq!(w.dma.chains().busy_descriptors(), 0);
    }

    #[test]
    fn delayed_completion_arrives_late() {
        use crate::fault::{FaultInjector, FaultPlan};
        let cm = CostModel::keystone_ii();

        // Fault-free reference time.
        let baseline = {
            let mut sim: Sim<World> = Sim::new();
            let mut w = world(16);
            let ddr = w.flows.add_resource("ddr", 6.2);
            let t = w.dma.configure(vec![seg(0)], &cm).unwrap();
            launch(&mut w, &mut sim, &[ddr], &t, 4.0);
            sim.run(&mut w);
            w.done_at.unwrap()
        };

        let mut sim: Sim<World> = Sim::new();
        let mut w = world(16);
        let ddr = w.flows.add_resource("ddr", 6.2);
        w.dma.install_injector(FaultInjector::new(FaultPlan {
            seed: 2,
            delay_rate: 1.0,
            max_delay: SimDuration::from_us(100),
            ..FaultPlan::default()
        }));
        let t = w.dma.configure(vec![seg(0)], &cm).unwrap();
        launch(&mut w, &mut sim, &[ddr], &t, 4.0);
        sim.run(&mut w);
        let delayed = w.done_at.expect("delayed interrupt still arrives");
        assert!(
            delayed > baseline,
            "delay pushed completion past {baseline}"
        );
        assert!(delayed <= baseline + 100_000, "bounded by max_delay");
        assert_eq!(w.dma.stats().bytes_moved, 4096);
    }

    #[test]
    fn injected_exhaustion_reports_all_busy() {
        use crate::fault::{FaultInjector, FaultPlan};
        let cm = CostModel::keystone_ii();
        let mut e = DmaEngine::with_pool(64);
        e.install_injector(FaultInjector::new(FaultPlan {
            seed: 4,
            desc_exhaust_rate: 1.0,
            desc_exhaust_burst: 2,
            ..FaultPlan::default()
        }));
        assert_eq!(
            e.configure(vec![seg(0)], &cm),
            Err(ChainError::AllBusy),
            "pool is empty-handed despite 64 free descriptors"
        );
        assert!(e.fault_stats().unwrap().desc_exhaustions >= 1);
    }

    #[test]
    fn coalesced_configure_charges_per_merged_descriptor() {
        let cm = CostModel::keystone_ii();
        let mut e = DmaEngine::with_pool(32);
        // Three merged descriptors standing in for 7 pages.
        let segs = vec![
            SgSegment {
                src: PhysAddr::new(0x1_0000),
                dst: PhysAddr::new(0x8_0000),
                bytes: 4 * 4096,
            },
            SgSegment {
                src: PhysAddr::new(0x2_0000),
                dst: PhysAddr::new(0x9_0000),
                bytes: 4096,
            },
            SgSegment {
                src: PhysAddr::new(0x3_0000),
                dst: PhysAddr::new(0xA_0000),
                bytes: 2 * 4096,
            },
        ];
        let t = e.configure_segments(segs.clone(), &cm).unwrap();
        assert_eq!(t.descriptors, 3, "one descriptor per merged segment");
        assert_eq!(t.bytes, 7 * 4096);
        assert_eq!(t.config_cost, cm.desc_config_full() * 3);
        assert_eq!(
            t.engine_overhead,
            cm.dma_trigger + cm.dma_per_desc_engine * 3
        );
        e.finish_for_test(t.chain);
        // Exact-geometry reuse rewrites src/dst only.
        let t2 = e.configure_segments(segs, &cm).unwrap();
        assert_eq!(t2.config_cost, cm.desc_config_reuse() * 3);
    }

    #[test]
    fn uniform_configure_segments_matches_configure() {
        let cm = CostModel::keystone_ii();
        let mut a = DmaEngine::with_pool(32);
        let mut b = DmaEngine::with_pool(32);
        let ta = a.configure((0..4).map(seg).collect(), &cm).unwrap();
        let tb = b
            .configure_segments((0..4).map(seg).collect(), &cm)
            .unwrap();
        assert_eq!(ta, tb, "uniform lists take the identical path");
        assert_eq!(
            b.configure_segments(Vec::new(), &cm),
            Err(ChainError::Empty)
        );
    }

    #[test]
    fn segments_done_attributes_partial_errors() {
        let cm = CostModel::keystone_ii();
        let mut e = DmaEngine::with_pool(32);
        let t = e.configure((0..4).map(seg).collect(), &cm).unwrap();
        assert_eq!(t.segments_done(0), 0);
        assert_eq!(t.segments_done(4095), 0, "partial segment doesn't count");
        assert_eq!(t.segments_done(4096), 1);
        assert_eq!(t.segments_done(3 * 4096 + 1), 3);
        assert_eq!(t.segments_done(4 * 4096), 4);
        assert_eq!(t.segments_done(u64::MAX), 4);
    }

    impl DmaEngine {
        fn finish_for_test(&mut self, chain: ChainId) {
            self.chains.release(chain);
        }
    }
}
