//! Descriptor-chain bookkeeping and reuse (§5.3).
//!
//! The enhanced DMA driver of the paper "maintains the knowledge of
//! existing descriptor chains": knowing that "starting from descriptor
//! 42, there exists a chain of 32 descriptors, each configured for a 4 KB
//! transfer", it reuses part of or the whole chain, rewriting only the
//! source and destination fields of each reused descriptor. This module
//! implements that knowledge: a pool of descriptor indices, records of
//! configured chains keyed by their per-descriptor size, LRU eviction
//! when the pool runs dry, and busy-marking so a chain serving an
//! in-flight transfer is never reconfigured under the engine.

use std::collections::HashMap;

/// Identifier of a recorded chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChainId(u64);

/// How a planned transfer maps onto descriptors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainPlan {
    /// The chain the transfer will run on.
    pub chain: ChainId,
    /// Descriptors reused from a previous configuration (src/dst rewrite
    /// only).
    pub reused: Vec<u16>,
    /// Descriptors needing a full 12-field configuration.
    pub fresh: Vec<u16>,
}

impl ChainPlan {
    /// Total descriptors in the plan.
    #[must_use]
    pub fn len(&self) -> usize {
        self.reused.len() + self.fresh.len()
    }

    /// True if the plan holds no descriptors.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All descriptor indices in chain order (reused prefix, then fresh).
    pub fn descriptors(&self) -> impl Iterator<Item = u16> + '_ {
        self.reused.iter().chain(self.fresh.iter()).copied()
    }
}

#[derive(Debug)]
struct ChainRecord {
    descs: Vec<u16>,
    bytes_per_desc: u64,
    /// Per-descriptor byte sizes for mixed-size (coalesced) chains;
    /// `None` for the uniform chains of the classic one-page-per-
    /// descriptor path. Mixed chains carry `bytes_per_desc = 0` so a
    /// uniform plan can never match them.
    sizes: Option<Vec<u64>>,
    last_use: u64,
    busy: bool,
}

/// Errors from chain planning and transfer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainError {
    /// More descriptors were requested than the PaRAM can ever hold.
    TooLarge {
        /// Descriptors the caller asked for.
        requested: usize,
        /// Total descriptors in the PaRAM pool.
        pool: usize,
    },
    /// Every descriptor is currently tied up in busy (in-flight) chains.
    AllBusy,
    /// The scatter-gather list holds no segments at all.
    Empty,
    /// The scatter-gather segments are not uniformly sized (memif
    /// dedicates one equally-sized descriptor per page).
    MixedSizes,
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::TooLarge { requested, pool } => {
                write!(f, "{requested} descriptors requested, pool holds {pool}")
            }
            ChainError::AllBusy => f.write_str("all descriptors busy with in-flight transfers"),
            ChainError::Empty => f.write_str("empty scatter-gather list"),
            ChainError::MixedSizes => f.write_str("scatter-gather segments not uniformly sized"),
        }
    }
}

impl std::error::Error for ChainError {}

/// The descriptor pool and chain-reuse knowledge base.
#[derive(Debug)]
pub struct ChainManager {
    free: Vec<u16>,
    pool_size: usize,
    chains: HashMap<u64, ChainRecord>,
    next_chain: u64,
    clock: u64,
    reuse_enabled: bool,
}

impl ChainManager {
    /// A manager over `pool_size` descriptor indices (`0..pool_size`).
    ///
    /// # Panics
    ///
    /// Panics if `pool_size` is 0 or above `u16::MAX`.
    #[must_use]
    pub fn new(pool_size: usize) -> Self {
        assert!(
            pool_size > 0 && pool_size < u16::MAX as usize,
            "bad pool size"
        );
        ChainManager {
            free: (0..pool_size as u16).rev().collect(),
            pool_size,
            chains: HashMap::new(),
            next_chain: 0,
            clock: 0,
            reuse_enabled: true,
        }
    }

    /// Enables or disables chain reuse (ablation A1). With reuse off,
    /// every plan gets freshly configured descriptors and previous chains
    /// are recycled rather than remembered.
    pub fn set_reuse_enabled(&mut self, enabled: bool) {
        self.reuse_enabled = enabled;
    }

    /// Whether reuse is enabled.
    #[must_use]
    pub fn reuse_enabled(&self) -> bool {
        self.reuse_enabled
    }

    /// Free descriptors currently in the pool.
    #[must_use]
    pub fn free_descriptors(&self) -> usize {
        self.free.len()
    }

    /// Plans a transfer of `n` descriptors, each moving `bytes_per_desc`
    /// bytes. The returned plan's chain is marked busy until
    /// [`ChainManager::release`].
    ///
    /// # Errors
    ///
    /// * [`ChainError::TooLarge`] if `n` exceeds the pool size.
    /// * [`ChainError::AllBusy`] if in-flight chains hold every
    ///   descriptor needed.
    pub fn plan(&mut self, n: usize, bytes_per_desc: u64) -> Result<ChainPlan, ChainError> {
        if n > self.pool_size {
            return Err(ChainError::TooLarge {
                requested: n,
                pool: self.pool_size,
            });
        }
        self.clock += 1;

        if !self.reuse_enabled {
            let fresh = self.take_free(n)?;
            let id = self.record(fresh.clone(), bytes_per_desc, None);
            return Ok(ChainPlan {
                chain: id,
                reused: Vec::new(),
                fresh,
            });
        }

        // Best candidate: an idle chain with the same per-descriptor size,
        // preferring the one whose length is closest to (but ideally at
        // least) n so long chains are preserved for large requests.
        let candidate = self
            .chains
            .iter()
            .filter(|(_, c)| !c.busy && c.sizes.is_none() && c.bytes_per_desc == bytes_per_desc)
            .max_by_key(|(_, c)| {
                let len = c.descs.len();
                if len >= n {
                    // Smallest sufficient chain wins among sufficient ones.
                    (1, usize::MAX - len)
                } else {
                    (0, len)
                }
            })
            .map(|(id, _)| *id);

        match candidate {
            Some(id) => {
                // Mark the candidate busy *before* drawing fresh
                // descriptors so the eviction path cannot steal it, and
                // return any tail beyond the reused prefix to the pool
                // (a longer chain shrinks rather than leaking).
                let (reused, need) = {
                    let c = self.chains.get_mut(&id).expect("candidate exists");
                    c.busy = true;
                    c.last_use = self.clock;
                    let take = c.descs.len().min(n);
                    let tail = c.descs.split_off(take);
                    let reused = c.descs.clone();
                    (reused, (n - take, tail))
                };
                let (need, tail) = (need.0, need.1);
                self.free.extend(tail);
                match self.take_free(need) {
                    Ok(fresh) => {
                        let c = self.chains.get_mut(&id).expect("candidate exists");
                        c.descs.extend_from_slice(&fresh);
                        Ok(ChainPlan {
                            chain: ChainId(id),
                            reused,
                            fresh,
                        })
                    }
                    Err(e) => {
                        // Roll back the busy mark; the (shrunk) chain
                        // stays usable for smaller requests.
                        let c = self.chains.get_mut(&id).expect("candidate exists");
                        c.busy = false;
                        Err(e)
                    }
                }
            }
            None => {
                let fresh = self.take_free(n)?;
                let id = self.record(fresh.clone(), bytes_per_desc, None);
                Ok(ChainPlan {
                    chain: id,
                    reused: Vec::new(),
                    fresh,
                })
            }
        }
    }

    /// Plans a transfer over explicitly sized segments — the coalesced
    /// issue path, where merged descriptors may differ in size. A
    /// uniform size list delegates to [`ChainManager::plan`] and behaves
    /// byte-for-byte identically; a mixed list is carried by a
    /// geometry-keyed chain that is reused only on an exact size-vector
    /// match (every descriptor's count fields are already right, so the
    /// whole chain goes out with src/dst rewrites alone).
    ///
    /// # Errors
    ///
    /// * [`ChainError::Empty`] on an empty size list.
    /// * [`ChainError::TooLarge`] / [`ChainError::AllBusy`] as for
    ///   [`ChainManager::plan`].
    pub fn plan_segments(&mut self, sizes: &[u64]) -> Result<ChainPlan, ChainError> {
        let Some(&first) = sizes.first() else {
            return Err(ChainError::Empty);
        };
        if sizes.iter().all(|&s| s == first) {
            return self.plan(sizes.len(), first);
        }
        let n = sizes.len();
        if n > self.pool_size {
            return Err(ChainError::TooLarge {
                requested: n,
                pool: self.pool_size,
            });
        }
        self.clock += 1;
        if self.reuse_enabled {
            // Lowest chain id wins among exact matches: unique ids keep
            // the choice deterministic across runs (HashMap order isn't).
            let candidate = self
                .chains
                .iter()
                .filter(|(_, c)| !c.busy && c.sizes.as_deref() == Some(sizes))
                .min_by_key(|(id, _)| **id)
                .map(|(id, _)| *id);
            if let Some(id) = candidate {
                let c = self.chains.get_mut(&id).expect("candidate exists");
                c.busy = true;
                c.last_use = self.clock;
                return Ok(ChainPlan {
                    chain: ChainId(id),
                    reused: c.descs.clone(),
                    fresh: Vec::new(),
                });
            }
        }
        let fresh = self.take_free(n)?;
        let id = self.record(fresh.clone(), 0, Some(sizes.to_vec()));
        Ok(ChainPlan {
            chain: id,
            reused: Vec::new(),
            fresh,
        })
    }

    /// Marks a chain idle again after its transfer completes or aborts.
    /// With reuse disabled the chain's descriptors return to the pool.
    pub fn release(&mut self, chain: ChainId) {
        if self.reuse_enabled {
            if let Some(c) = self.chains.get_mut(&chain.0) {
                c.busy = false;
            }
        } else if let Some(c) = self.chains.remove(&chain.0) {
            self.free.extend(c.descs);
        }
    }

    /// Number of chains currently remembered.
    #[must_use]
    pub fn known_chains(&self) -> usize {
        self.chains.len()
    }

    /// Chains currently marked busy (serving in-flight transfers).
    #[must_use]
    pub fn busy_chains(&self) -> usize {
        self.chains.values().filter(|c| c.busy).count()
    }

    /// Descriptors currently held by busy chains — the pool's in-flight
    /// occupancy. Zero once every transfer has completed or aborted.
    #[must_use]
    pub fn busy_descriptors(&self) -> usize {
        self.chains
            .values()
            .filter(|c| c.busy)
            .map(|c| c.descs.len())
            .sum()
    }

    fn record(&mut self, descs: Vec<u16>, bytes_per_desc: u64, sizes: Option<Vec<u64>>) -> ChainId {
        let id = self.next_chain;
        self.next_chain += 1;
        self.chains.insert(
            id,
            ChainRecord {
                descs,
                bytes_per_desc,
                sizes,
                last_use: self.clock,
                busy: true,
            },
        );
        ChainId(id)
    }

    fn take_free(&mut self, n: usize) -> Result<Vec<u16>, ChainError> {
        while self.free.len() < n {
            // Evict the least-recently-used idle chain.
            let victim = self
                .chains
                .iter()
                .filter(|(_, c)| !c.busy)
                .min_by_key(|(id, c)| (c.last_use, **id))
                .map(|(id, _)| *id);
            match victim {
                Some(id) => {
                    let c = self.chains.remove(&id).expect("victim exists");
                    self.free.extend(c.descs);
                }
                None => return Err(ChainError::AllBusy),
            }
        }
        let at = self.free.len() - n;
        Ok(self.free.split_off(at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_plan_is_all_fresh() {
        let mut m = ChainManager::new(16);
        let p = m.plan(4, 4096).unwrap();
        assert_eq!(p.reused.len(), 0);
        assert_eq!(p.fresh.len(), 4);
        assert_eq!(p.len(), 4);
        assert_eq!(m.free_descriptors(), 12);
    }

    #[test]
    fn released_chain_is_reused_in_full() {
        let mut m = ChainManager::new(16);
        let p1 = m.plan(4, 4096).unwrap();
        m.release(p1.chain);
        let p2 = m.plan(4, 4096).unwrap();
        assert_eq!(p2.reused.len(), 4, "whole chain reused");
        assert_eq!(p2.fresh.len(), 0);
        assert_eq!(p2.reused, p1.fresh, "same descriptors, same order");
    }

    #[test]
    fn partial_reuse_extends_chain() {
        let mut m = ChainManager::new(16);
        let p1 = m.plan(3, 4096).unwrap();
        m.release(p1.chain);
        let p2 = m.plan(5, 4096).unwrap();
        assert_eq!(p2.reused.len(), 3);
        assert_eq!(p2.fresh.len(), 2);
        m.release(p2.chain);
        // The extended chain now serves 5 in full.
        let p3 = m.plan(5, 4096).unwrap();
        assert_eq!(p3.reused.len(), 5);
    }

    #[test]
    fn prefix_reuse_of_longer_chain() {
        let mut m = ChainManager::new(16);
        let p1 = m.plan(8, 4096).unwrap();
        m.release(p1.chain);
        let p2 = m.plan(2, 4096).unwrap();
        assert_eq!(p2.reused.len(), 2, "reuses part of the whole chain (§5.3)");
        assert_eq!(p2.fresh.len(), 0);
    }

    #[test]
    fn different_page_size_does_not_reuse() {
        let mut m = ChainManager::new(32);
        let p1 = m.plan(4, 4096).unwrap();
        m.release(p1.chain);
        let p2 = m.plan(4, 65_536).unwrap();
        assert_eq!(p2.reused.len(), 0, "4 KiB chain useless for 64 KiB pages");
        assert_eq!(p2.fresh.len(), 4);
    }

    #[test]
    fn busy_chain_is_not_reused() {
        let mut m = ChainManager::new(16);
        let p1 = m.plan(4, 4096).unwrap();
        // p1 not released: in flight.
        let p2 = m.plan(4, 4096).unwrap();
        assert_eq!(p2.reused.len(), 0);
        assert_ne!(p1.fresh, p2.fresh);
    }

    #[test]
    fn lru_eviction_when_pool_exhausted() {
        let mut m = ChainManager::new(8);
        let a = m.plan(4, 4096).unwrap();
        m.release(a.chain);
        let b = m.plan(4, 8192).unwrap();
        m.release(b.chain);
        // Pool empty; a is LRU and idle: must be evicted for a 64 KiB plan.
        let c = m.plan(4, 65_536).unwrap();
        assert_eq!(c.fresh.len(), 4);
        assert_eq!(m.known_chains(), 2, "chain a evicted");
    }

    #[test]
    fn all_busy_is_an_error() {
        let mut m = ChainManager::new(4);
        let _a = m.plan(4, 4096).unwrap();
        assert_eq!(m.plan(1, 4096), Err(ChainError::AllBusy));
    }

    #[test]
    fn too_large_is_an_error() {
        let mut m = ChainManager::new(4);
        assert_eq!(
            m.plan(5, 4096),
            Err(ChainError::TooLarge {
                requested: 5,
                pool: 4
            })
        );
    }

    #[test]
    fn uniform_segments_delegate_to_plan() {
        let mut m = ChainManager::new(16);
        let p1 = m.plan(4, 4096).unwrap();
        m.release(p1.chain);
        let p2 = m.plan_segments(&[4096; 4]).unwrap();
        assert_eq!(p2.reused.len(), 4, "uniform list reuses the uniform chain");
        assert_eq!(p2.fresh.len(), 0);
    }

    #[test]
    fn mixed_chain_reuses_on_exact_match_only() {
        let mut m = ChainManager::new(32);
        let sizes = [8192u64, 4096, 16384];
        let p1 = m.plan_segments(&sizes).unwrap();
        assert_eq!(p1.fresh.len(), 3);
        m.release(p1.chain);
        // Exact geometry match: whole chain reused.
        let p2 = m.plan_segments(&sizes).unwrap();
        assert_eq!(p2.reused.len(), 3);
        assert_eq!(p2.fresh.len(), 0);
        assert_eq!(p2.reused, p1.fresh);
        m.release(p2.chain);
        // Different geometry: all fresh, even with the old chain idle.
        let p3 = m.plan_segments(&[4096, 8192, 16384]).unwrap();
        assert_eq!(p3.reused.len(), 0);
        assert_eq!(p3.fresh.len(), 3);
    }

    #[test]
    fn mixed_chain_never_serves_uniform_plans() {
        let mut m = ChainManager::new(32);
        let p1 = m.plan_segments(&[4096, 8192]).unwrap();
        m.release(p1.chain);
        let p2 = m.plan(2, 4096).unwrap();
        assert_eq!(p2.reused.len(), 0, "mixed geometry is useless for pages");
        let p3 = m.plan_segments(&[4096; 2]).unwrap();
        assert_eq!(p3.reused.len(), 0, "uniform request skips mixed records");
    }

    #[test]
    fn empty_segment_list_is_an_error() {
        let mut m = ChainManager::new(4);
        assert_eq!(m.plan_segments(&[]), Err(ChainError::Empty));
        assert_eq!(
            m.plan_segments(&[4096, 8192, 4096, 4096, 8192]),
            Err(ChainError::TooLarge {
                requested: 5,
                pool: 4
            })
        );
    }

    #[test]
    fn reuse_disabled_always_fresh() {
        let mut m = ChainManager::new(16);
        m.set_reuse_enabled(false);
        assert!(!m.reuse_enabled());
        let p1 = m.plan(4, 4096).unwrap();
        m.release(p1.chain);
        assert_eq!(m.known_chains(), 0, "no knowledge kept");
        let p2 = m.plan(4, 4096).unwrap();
        assert_eq!(p2.reused.len(), 0);
        assert_eq!(p2.fresh.len(), 4);
    }
}
