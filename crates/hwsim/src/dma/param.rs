//! EDMA3-style transfer descriptors (PaRAM sets).
//!
//! The TI EDMA3 exposes an array of *parameter RAM* entries; each of the
//! 12 fields commands one aspect of a three-dimensional transfer, and a
//! link field chains entries into scatter-gather lists (§5.3, [58]). The
//! fields live in unbuffered, uncached I/O memory, which is why writing
//! them dominates configuration cost — the quantity the paper's
//! descriptor-reuse optimization attacks.

use serde::{Deserialize, Serialize};

use crate::phys::PhysAddr;

/// Number of PaRAM entries on KeyStone II (Table 2: "512 entries for
/// transfer descriptors").
pub const NUM_PARAM_SETS: usize = 512;

/// Fields per descriptor (§5.3: "Consisting of 12 parameters...").
pub const PARAM_FIELDS: u32 = 12;

/// Link value terminating a descriptor chain.
pub const NULL_LINK: u16 = 0xFFFF;

/// One transfer descriptor. Field names follow the EDMA3 manual; the
/// engine copies an `acnt × bcnt × ccnt` three-dimensional array with the
/// given strides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamSet {
    /// Option word (transfer mode, completion code).
    pub opt: u32,
    /// Source address.
    pub src: PhysAddr,
    /// Destination address.
    pub dst: PhysAddr,
    /// Bytes per array (first dimension).
    pub acnt: u32,
    /// Arrays per frame (second dimension).
    pub bcnt: u32,
    /// Frames per block (third dimension).
    pub ccnt: u32,
    /// Source stride between arrays.
    pub src_bidx: i32,
    /// Destination stride between arrays.
    pub dst_bidx: i32,
    /// Source stride between frames.
    pub src_cidx: i32,
    /// Destination stride between frames.
    pub dst_cidx: i32,
    /// BCNT reload value for linked transfers.
    pub bcnt_reload: u32,
    /// Next descriptor in the chain, or [`NULL_LINK`].
    pub link: u16,
}

impl Default for ParamSet {
    fn default() -> Self {
        ParamSet {
            opt: 0,
            src: PhysAddr::new(0),
            dst: PhysAddr::new(0),
            acnt: 0,
            bcnt: 0,
            ccnt: 0,
            src_bidx: 0,
            dst_bidx: 0,
            src_cidx: 0,
            dst_cidx: 0,
            bcnt_reload: 0,
            link: NULL_LINK,
        }
    }
}

impl ParamSet {
    /// A descriptor copying one physically contiguous region — the shape
    /// memif uses: "the driver dedicates each descriptor to one page, the
    /// largest physically contiguous memory area that applications are
    /// guaranteed to get" (§5.3).
    ///
    /// Large byte counts are expressed through the B dimension since
    /// ACNT is a 16-bit quantity on real hardware.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero or not expressible as `acnt × bcnt`
    /// with 64-byte arrays (i.e. not a multiple of 64 when above 65 535).
    #[must_use]
    pub fn contiguous(src: PhysAddr, dst: PhysAddr, bytes: u64) -> Self {
        assert!(bytes > 0, "empty transfer");
        let (acnt, bcnt) = if bytes <= 0xFFFF {
            (bytes as u32, 1)
        } else {
            assert!(
                bytes.is_multiple_of(64),
                "large transfers must be 64-byte aligned"
            );
            (64, (bytes / 64) as u32)
        };
        ParamSet {
            src,
            dst,
            acnt,
            bcnt,
            ccnt: 1,
            src_bidx: acnt as i32,
            dst_bidx: acnt as i32,
            ..ParamSet::default()
        }
    }

    /// Total bytes this descriptor moves.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        u64::from(self.acnt) * u64::from(self.bcnt) * u64::from(self.ccnt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_small() {
        let p = ParamSet::contiguous(PhysAddr::new(0x1000), PhysAddr::new(0x2000), 4096);
        assert_eq!(p.total_bytes(), 4096);
        assert_eq!(p.ccnt, 1);
        assert_eq!(p.link, NULL_LINK);
    }

    #[test]
    fn contiguous_large_uses_b_dimension() {
        let p = ParamSet::contiguous(PhysAddr::new(0), PhysAddr::new(0), 2 << 20);
        assert_eq!(p.total_bytes(), 2 << 20);
        assert_eq!(p.acnt, 64);
        assert_eq!(p.bcnt, (2 << 20) / 64);
    }

    #[test]
    #[should_panic(expected = "empty transfer")]
    fn zero_bytes_rejected() {
        let _ = ParamSet::contiguous(PhysAddr::new(0), PhysAddr::new(0), 0);
    }

    #[test]
    fn default_is_inert() {
        let p = ParamSet::default();
        assert_eq!(p.total_bytes(), 0);
        assert_eq!(p.link, NULL_LINK);
    }
}
