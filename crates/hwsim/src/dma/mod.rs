//! The EDMA3-model DMA engine: descriptors, chain reuse, execution.

mod chain;
mod engine;
mod param;

pub use chain::{ChainError, ChainId, ChainManager, ChainPlan};
pub use engine::{ConfiguredTransfer, DmaEngine, DmaOutcome, DmaStats, SgSegment, TransferId};
pub use param::{ParamSet, NULL_LINK, NUM_PARAM_SETS, PARAM_FIELDS};
