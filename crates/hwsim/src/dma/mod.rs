//! The EDMA3-model DMA engine: descriptors, chain reuse, execution.

mod chain;
mod engine;
mod param;
mod tc;

pub use chain::{ChainError, ChainId, ChainManager, ChainPlan};
pub use engine::{
    AbortedTransfer, CompletionDelivery, ConfiguredTransfer, DmaEngine, DmaOutcome, DmaStats,
    LaunchTicket, SgSegment, TransferId,
};
pub use param::{ParamSet, NULL_LINK, NUM_PARAM_SETS, PARAM_FIELDS};
pub use tc::TcScheduler;
