//! The calibrated software/hardware cost model.
//!
//! Every operation the memif driver or the Linux-baseline migration path
//! performs is charged from this table. The primary profile reproduces the
//! paper's TI KeyStone II measurements (§2.2, §5.2, §5.3, Table 2); a
//! secondary profile approximates the 2×8 Xeon E5-4650 machine used for
//! the §2.2 microbenchmark. Constants the paper reports directly are
//! cited; the remainder are chosen so that the composite numbers the paper
//! *does* report (≈15 µs per migrated 4 KiB page on ARM, ≈0.30 GB/s
//! migspeed throughput) emerge from the parts.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Per-operation costs and platform bandwidths.
///
/// # Examples
///
/// ```
/// use memif_hwsim::CostModel;
///
/// let c = CostModel::keystone_ii();
/// // §2.2: copying one 4 KiB page on the CPU takes ≈4 µs.
/// assert_eq!(c.cpu_copy(4096).as_us_f64(), 4.096);
/// // §5.3: a fresh descriptor configuration costs 4–5 µs...
/// assert!((4.0..=5.0).contains(&c.desc_config_full().as_us_f64()));
/// // ...and reuse rewrites 4× fewer fields.
/// assert!(c.desc_config_reuse() < c.desc_config_full());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Human-readable profile name.
    pub name: String,

    // ---- Memory system (Table 2) ----
    /// Slow (DDR) node bandwidth, GB/s. Paper: 6.2.
    pub slow_bw_gbps: f64,
    /// Fast (SRAM) node bandwidth, GB/s. Paper: 24.0.
    pub fast_bw_gbps: f64,
    /// Aggregate bandwidth a CPU core achieves copying bytes (memcpy in
    /// the kernel): 4 KiB in 4 µs ⇒ ≈1.0 GB/s (§2.2).
    pub cpu_copy_bw_gbps: f64,
    /// Aggregate bandwidth all CPU cores achieve on *streaming* loads or
    /// stores against the slow node (used by the workload models). In-order
    /// A15 cores reach well under half the pin bandwidth.
    pub cpu_stream_slow_gbps: f64,
    /// Same, against the fast on-chip node.
    pub cpu_stream_fast_gbps: f64,

    // ---- DMA engine (§5.3) ----
    /// Effective DMA engine memory-to-memory bandwidth, GB/s. EDMA3
    /// transfer controllers sustain well under the pin rate on m2m
    /// copies; calibrated so that Figure 8's large-page memif/migspeed
    /// ratio lands near the paper's "up to 3x".
    pub dma_engine_bw_gbps: f64,
    /// Cost of one write to a transfer-descriptor field in unbuffered,
    /// uncached I/O memory. A full 12-field configuration takes 4–5 µs
    /// (§5.3) ⇒ ≈375 ns per field write.
    pub dma_desc_field_write: SimDuration,
    /// Fields in a full descriptor configuration. Paper: 12.
    pub dma_desc_fields: u32,
    /// Fields rewritten when reusing a configured descriptor (src + dst +
    /// trigger), giving the paper's 4× reduction.
    pub dma_desc_reuse_fields: u32,
    /// Per-descriptor parameter calculation on the CPU (before caching).
    pub dma_desc_param_calc: SimDuration,
    /// Engine-side per-descriptor processing latency inside a chain.
    pub dma_per_desc_engine: SimDuration,
    /// Fixed cost to trigger a configured transfer.
    pub dma_trigger: SimDuration,
    /// Transfer controllers: concurrent transfers the engine executes
    /// (Table 2: "6 transfer controllers"). Further launches queue.
    pub dma_transfer_controllers: u32,
    /// Independently modelled TC bandwidth channels. With 1 (the
    /// paper's implicit configuration) every transfer contends on one
    /// engine-wide resource; with N each channel gets its own
    /// `dma_engine_bw_gbps` pipe and launches are routed least-loaded.
    pub dma_tc_count: u32,

    // ---- NVM-like persistent tier ----
    /// Read bandwidth of an `MemoryKind::Nvm` node, GB/s. Defaults to the
    /// DDR number so configurations without an NVM node are unaffected.
    pub nvm_read_bw_gbps: f64,
    /// Write bandwidth of an NVM node, GB/s. Real NVM writes are slower
    /// than reads; the default keeps it symmetric (= DRAM) so the stock
    /// profiles stay byte-identical.
    pub nvm_write_bw_gbps: f64,
    /// Appending one record to the persistent move journal (a small
    /// streaming write plus ordering fence). Charged only when a device
    /// is opened with `journal = true`.
    pub journal_write: SimDuration,
    /// Aggregate bandwidth CPU cores achieve streaming against an NVM
    /// node. Only exercised when a topology has an `MemoryKind::Nvm`
    /// bank, so the stock two-node profiles are unaffected.
    pub cpu_stream_nvm_gbps: f64,

    // ---- Compressed cold tier (zram/zswap-like) ----
    /// CPU compression throughput, GB/s: every byte moved *into* a
    /// `MemoryKind::Compressed` bank charges `bytes / compress_bw` of
    /// kernel-thread time, analogous to the CPU-copy degradation path.
    /// Only exercised when a compressed bank exists.
    pub compress_bw_gbps: f64,
    /// CPU decompression throughput, GB/s, charged per byte moved *out*
    /// of a compressed bank. Decompression is cheaper than compression
    /// for LZ-class codecs.
    pub decompress_bw_gbps: f64,
    /// Aggregate bandwidth CPU cores achieve streaming data that is
    /// resident in a compressed bank (decompress-on-access dominated).
    pub cpu_stream_compressed_gbps: f64,

    // ---- Virtual memory (§5.1, §5.2) ----
    /// Full vertical page-table walk from the root to a PTE.
    pub pt_walk_vertical: SimDuration,
    /// Horizontal step to the adjacent PTE during gang lookup.
    pub pt_walk_horizontal: SimDuration,
    /// Replacing a PTE (store + barriers).
    pub pte_replace: SimDuration,
    /// Flushing one page's TLB entry (direct cost; paper: PTE change +
    /// TLB flush is "up to a couple of µs" together with the replace).
    pub tlb_flush_page: SimDuration,
    /// A compare-and-swap on a PTE (memif Release, §5.2).
    pub pte_cas: SimDuration,
    /// Allocating one page frame from a node allocator.
    pub page_alloc: SimDuration,
    /// Freeing one page frame.
    pub page_free: SimDuration,
    /// Cache flush for one 4 KiB page (baseline only: the coherent DMA
    /// engine relieves memif of cache maintenance, §2.3).
    pub cache_flush_page: SimDuration,
    /// Page-descriptor lookup bookkeeping per page on the Linux path
    /// (LRU isolation, refcount dances, rmap checks).
    pub page_bookkeeping: SimDuration,
    /// Per-page descriptor bookkeeping on memif's gang path (§5.1): the
    /// page stays mapped and on its LRU list, so only a refcount bump
    /// and descriptor fetch remain.
    pub gang_bookkeeping: SimDuration,

    // ---- Kernel interface (§2.3, §5.4) ----
    /// Direct cost of one user/kernel crossing (entry + exit).
    pub syscall: SimDuration,
    /// Interrupt entry + exit.
    pub interrupt: SimDuration,
    /// Waking the memif kernel thread / context switch.
    pub kthread_wakeup: SimDuration,
    /// One lock-free queue operation (enqueue/dequeue/CAS loop, uncontended).
    pub queue_op: SimDuration,
    /// Byte threshold below which the kernel thread polls for completion
    /// instead of taking an interrupt (§5.4: 512 KB).
    pub poll_threshold_bytes: u64,

    // ---- Placement-policy sampling (memif-policy) ----
    /// Fixed overhead of one policy sampling epoch: the daemon's wakeup,
    /// its capacity probe, and the plan/issue bookkeeping around the
    /// per-page work below.
    pub policy_epoch_base: SimDuration,
    /// Scanning one PTE's reference state and conditionally re-arming it
    /// (a table read plus an occasional CAS; cheaper than a full
    /// `pte_cas` because most entries need no write-back).
    pub policy_scan_pte: SimDuration,
    /// Decaying and updating one tracked region's heat accumulator.
    pub policy_heat_update: SimDuration,
}

impl CostModel {
    /// The primary profile: TI KeyStone II (4× Cortex-A15 @1.2 GHz,
    /// 6 MB SRAM + 8 GB DDR3, EDMA3). See module docs for calibration.
    #[must_use]
    pub fn keystone_ii() -> Self {
        CostModel {
            name: "keystone-ii".to_owned(),
            slow_bw_gbps: 6.2,
            fast_bw_gbps: 24.0,
            cpu_copy_bw_gbps: 1.0,
            cpu_stream_slow_gbps: 2.4,
            cpu_stream_fast_gbps: 8.0,
            dma_engine_bw_gbps: 3.0,
            dma_desc_field_write: SimDuration::from_ns(375),
            dma_desc_fields: 12,
            dma_desc_reuse_fields: 3,
            dma_desc_param_calc: SimDuration::from_ns(150),
            dma_per_desc_engine: SimDuration::from_ns(550),
            dma_trigger: SimDuration::from_ns(300),
            dma_transfer_controllers: 6,
            dma_tc_count: 1,
            nvm_read_bw_gbps: 6.2,
            nvm_write_bw_gbps: 6.2,
            journal_write: SimDuration::from_ns(600),
            cpu_stream_nvm_gbps: 1.2,
            compress_bw_gbps: 2.0,
            decompress_bw_gbps: 4.0,
            cpu_stream_compressed_gbps: 0.5,
            pt_walk_vertical: SimDuration::from_ns(1_100),
            pt_walk_horizontal: SimDuration::from_ns(90),
            pte_replace: SimDuration::from_ns(500),
            tlb_flush_page: SimDuration::from_ns(1_600),
            pte_cas: SimDuration::from_ns(120),
            page_alloc: SimDuration::from_ns(1_000),
            page_free: SimDuration::from_ns(600),
            cache_flush_page: SimDuration::from_ns(1_800),
            page_bookkeeping: SimDuration::from_ns(1_200),
            gang_bookkeeping: SimDuration::from_ns(150),
            syscall: SimDuration::from_ns(800),
            interrupt: SimDuration::from_ns(1_500),
            kthread_wakeup: SimDuration::from_ns(2_000),
            queue_op: SimDuration::from_ns(80),
            poll_threshold_bytes: 512 * 1024,
            policy_epoch_base: SimDuration::from_ns(4_000),
            policy_scan_pte: SimDuration::from_ns(90),
            policy_heat_update: SimDuration::from_ns(60),
        }
    }

    /// Secondary profile approximating the 2×8 Xeon E5-4650 NUMA machine
    /// of §2.2 (faster cores and memory, cheaper per-page software cost:
    /// 0.66 GB/s at 1500 pages, 1.41 GB/s at 1 M pages).
    #[must_use]
    pub fn xeon_e5() -> Self {
        CostModel {
            name: "xeon-e5-4650".to_owned(),
            slow_bw_gbps: 40.0,
            fast_bw_gbps: 40.0,
            cpu_copy_bw_gbps: 4.0,
            cpu_stream_slow_gbps: 10.0,
            cpu_stream_fast_gbps: 10.0,
            dma_engine_bw_gbps: 20.0,
            dma_desc_field_write: SimDuration::from_ns(250),
            dma_desc_param_calc: SimDuration::from_ns(60),
            dma_per_desc_engine: SimDuration::from_ns(100),
            dma_trigger: SimDuration::from_ns(200),
            pt_walk_vertical: SimDuration::from_ns(500),
            pt_walk_horizontal: SimDuration::from_ns(40),
            pte_replace: SimDuration::from_ns(300),
            tlb_flush_page: SimDuration::from_ns(800),
            pte_cas: SimDuration::from_ns(50),
            page_alloc: SimDuration::from_ns(600),
            page_free: SimDuration::from_ns(400),
            cache_flush_page: SimDuration::from_ns(800),
            page_bookkeeping: SimDuration::from_ns(600),
            gang_bookkeeping: SimDuration::from_ns(80),
            syscall: SimDuration::from_ns(350),
            interrupt: SimDuration::from_ns(900),
            kthread_wakeup: SimDuration::from_ns(1_200),
            queue_op: SimDuration::from_ns(40),
            ..Self::keystone_ii()
        }
    }

    /// Cost of a fresh full configuration of one transfer descriptor.
    #[must_use]
    pub fn desc_config_full(&self) -> SimDuration {
        self.dma_desc_field_write * u64::from(self.dma_desc_fields) + self.dma_desc_param_calc
    }

    /// Cost of reconfiguring a reused descriptor (src/dst only, §5.3).
    #[must_use]
    pub fn desc_config_reuse(&self) -> SimDuration {
        self.dma_desc_field_write * u64::from(self.dma_desc_reuse_fields)
    }

    /// CPU time to copy `bytes` with the kernel memcpy path.
    #[must_use]
    pub fn cpu_copy(&self, bytes: u64) -> SimDuration {
        SimDuration::for_bytes(bytes, self.cpu_copy_bw_gbps)
    }

    /// Combined cost of replacing one PTE and flushing its TLB entry.
    #[must_use]
    pub fn pte_update_with_flush(&self) -> SimDuration {
        self.pte_replace + self.tlb_flush_page
    }

    /// CPU time to compress `bytes` on the way into a compressed bank.
    #[must_use]
    pub fn compress(&self, bytes: u64) -> SimDuration {
        SimDuration::for_bytes(bytes, self.compress_bw_gbps)
    }

    /// CPU time to decompress `bytes` on the way out of a compressed bank.
    #[must_use]
    pub fn decompress(&self, bytes: u64) -> SimDuration {
        SimDuration::for_bytes(bytes, self.decompress_bw_gbps)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::keystone_ii()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The parts must add up to the paper's composite measurements.
    #[test]
    fn keystone_linux_per_page_budget() {
        let c = CostModel::keystone_ii();
        // Baseline per-4KiB-page migration (§2.2: ≈15 µs, of which 4 µs
        // is byte copy): walk + alloc + 2×(PTE+TLB) + copy + cache flush
        // + free + bookkeeping.
        let per_page = c.pt_walk_vertical
            + c.page_alloc
            + c.pte_update_with_flush()
            + c.cpu_copy(4096)
            + c.cache_flush_page
            + c.pte_update_with_flush()
            + c.page_free
            + c.page_bookkeeping;
        let us = per_page.as_us_f64();
        assert!(
            (13.0..17.0).contains(&us),
            "per-page cost {us} µs outside 15 µs ± 2"
        );
        assert_eq!(
            c.cpu_copy(4096).as_ns(),
            4_096,
            "4 µs byte copy per 4 KiB page"
        );
    }

    #[test]
    fn descriptor_costs_match_paper() {
        let c = CostModel::keystone_ii();
        let full = c.desc_config_full().as_us_f64();
        assert!(
            (4.0..=5.0).contains(&full),
            "full config {full} µs outside 4–5 µs"
        );
        // "reducing the second overhead by 4×": field-write portion only.
        let write_full = c.dma_desc_field_write * u64::from(c.dma_desc_fields);
        let write_reuse = c.desc_config_reuse();
        assert_eq!(write_full.as_ns() / write_reuse.as_ns(), 4);
    }

    #[test]
    fn profiles_are_distinct() {
        let arm = CostModel::keystone_ii();
        let x86 = CostModel::xeon_e5();
        assert_ne!(arm, x86);
        assert!(x86.cpu_copy_bw_gbps > arm.cpu_copy_bw_gbps);
        assert_eq!(arm.poll_threshold_bytes, 512 * 1024);
    }

    #[test]
    fn default_is_keystone() {
        assert_eq!(CostModel::default().name, "keystone-ii");
    }

    #[test]
    fn codec_costs_are_asymmetric() {
        let c = CostModel::keystone_ii();
        // LZ-class: decompression is cheaper than compression, and both
        // are slower than a plain kernel memcpy per byte... compression
        // at 2 GB/s actually beats the 1 GB/s memcpy — the dominant cost
        // of a compressed-tier move is the codec plus the DMA, not the
        // copy. What matters: both are nonzero and decompress < compress.
        assert!(c.compress(1 << 20) > c.decompress(1 << 20));
        assert!(c.decompress(4096).as_ns() > 0);
        // Streaming from the compressed tier is the slowest residency.
        assert!(c.cpu_stream_compressed_gbps < c.cpu_stream_nvm_gbps);
        assert!(c.cpu_stream_nvm_gbps < c.cpu_stream_slow_gbps);
    }
}
