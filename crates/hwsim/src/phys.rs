//! Simulated physical memory with real byte contents.
//!
//! Byte copies in the experiments are *real*: migration and replication
//! verifiably move data, and race tests can corrupt and detect it. To
//! make an 8 GB DDR bank affordable, storage is sparse — 4 KiB frames
//! materialize on first write, and reads of untouched memory yield zeros
//! (matching zero-initialized fresh pages).

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A physical byte address on the simulated SoC.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Constructs an address.
    #[must_use]
    pub const fn new(addr: u64) -> Self {
        PhysAddr(addr)
    }

    /// Raw address value.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Address advanced by `offset` bytes.
    #[must_use]
    pub const fn offset(self, offset: u64) -> Self {
        PhysAddr(self.0 + offset)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

const FRAME_SHIFT: u32 = 12;
const FRAME_SIZE: usize = 1 << FRAME_SHIFT;

/// Sparse, byte-addressable physical memory.
#[derive(Default)]
pub struct PhysMem {
    frames: HashMap<u64, Box<[u8; FRAME_SIZE]>>,
}

impl fmt::Debug for PhysMem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PhysMem")
            .field("backed_frames", &self.frames.len())
            .finish()
    }
}

impl PhysMem {
    /// Empty (all-zero) physical memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of frames that have been materialized.
    #[must_use]
    pub fn backed_frames(&self) -> usize {
        self.frames.len()
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    pub fn read(&self, addr: PhysAddr, buf: &mut [u8]) {
        let mut pos = addr.0;
        let mut done = 0;
        while done < buf.len() {
            let frame = pos >> FRAME_SHIFT;
            let off = (pos as usize) & (FRAME_SIZE - 1);
            let n = (FRAME_SIZE - off).min(buf.len() - done);
            match self.frames.get(&frame) {
                Some(data) => buf[done..done + n].copy_from_slice(&data[off..off + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
            pos += n as u64;
        }
    }

    /// Writes `buf` starting at `addr`.
    pub fn write(&mut self, addr: PhysAddr, buf: &[u8]) {
        let mut pos = addr.0;
        let mut done = 0;
        while done < buf.len() {
            let frame = pos >> FRAME_SHIFT;
            let off = (pos as usize) & (FRAME_SIZE - 1);
            let n = (FRAME_SIZE - off).min(buf.len() - done);
            let data = self
                .frames
                .entry(frame)
                .or_insert_with(|| Box::new([0u8; FRAME_SIZE]));
            data[off..off + n].copy_from_slice(&buf[done..done + n]);
            done += n;
            pos += n as u64;
        }
    }

    /// Copies `len` bytes from `src` to `dst` (the byte-moving work a DMA
    /// descriptor or a kernel memcpy performs). Regions may overlap; the
    /// copy behaves like `memmove`.
    pub fn copy(&mut self, src: PhysAddr, dst: PhysAddr, len: u64) {
        if len == 0 || src == dst {
            return;
        }
        let mut buf = vec![0u8; len as usize];
        self.read(src, &mut buf);
        self.write(dst, &buf);
    }

    /// Fills `len` bytes at `addr` with `value`.
    pub fn fill(&mut self, addr: PhysAddr, len: u64, value: u8) {
        let buf = vec![value; len as usize];
        self.write(addr, &buf);
    }

    /// Reads one byte (test convenience).
    #[must_use]
    pub fn read_u8(&self, addr: PhysAddr) -> u8 {
        let mut b = [0u8];
        self.read(addr, &mut b);
        b[0]
    }

    /// FNV-1a checksum over `len` bytes — used by tests and examples to
    /// verify data integrity across moves without holding copies.
    #[must_use]
    pub fn checksum(&self, addr: PhysAddr, len: u64) -> u64 {
        let mut buf = vec![0u8; len as usize];
        self.read(addr, &mut buf);
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in buf {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// Releases the backing of every frame fully covered by the range
    /// (models freeing physical pages; reads return zeros afterwards).
    pub fn discard(&mut self, addr: PhysAddr, len: u64) {
        let first = addr.0 >> FRAME_SHIFT;
        let last = (addr.0 + len) >> FRAME_SHIFT;
        for frame in first..last {
            self.frames.remove(&frame);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_of_untouched_memory_is_zero() {
        let mem = PhysMem::new();
        let mut buf = [0xAAu8; 64];
        mem.read(PhysAddr::new(0x1234_5678), &mut buf);
        assert!(buf.iter().all(|&b| b == 0));
        assert_eq!(mem.backed_frames(), 0);
    }

    #[test]
    fn write_read_roundtrip_across_frames() {
        let mut mem = PhysMem::new();
        // Straddle a frame boundary deliberately.
        let addr = PhysAddr::new(4096 - 7);
        let data: Vec<u8> = (0..40).collect();
        mem.write(addr, &data);
        let mut back = vec![0u8; 40];
        mem.read(addr, &mut back);
        assert_eq!(back, data);
        assert_eq!(mem.backed_frames(), 2);
    }

    #[test]
    fn copy_moves_bytes() {
        let mut mem = PhysMem::new();
        let src = PhysAddr::new(0x10_000);
        let dst = PhysAddr::new(0x8000_0000);
        mem.fill(src, 8192, 0x5A);
        mem.copy(src, dst, 8192);
        assert_eq!(mem.read_u8(dst), 0x5A);
        assert_eq!(mem.read_u8(dst.offset(8191)), 0x5A);
        assert_eq!(mem.checksum(src, 8192), mem.checksum(dst, 8192));
    }

    #[test]
    fn overlapping_copy_is_memmove() {
        let mut mem = PhysMem::new();
        let base = PhysAddr::new(0x2000);
        let data: Vec<u8> = (0..=255).collect();
        mem.write(base, &data);
        mem.copy(base, base.offset(16), 256);
        assert_eq!(mem.read_u8(base.offset(16)), 0);
        assert_eq!(mem.read_u8(base.offset(16 + 255)), 255);
    }

    #[test]
    fn checksums_differ_for_different_data() {
        let mut mem = PhysMem::new();
        mem.fill(PhysAddr::new(0), 128, 1);
        mem.fill(PhysAddr::new(4096), 128, 2);
        assert_ne!(
            mem.checksum(PhysAddr::new(0), 128),
            mem.checksum(PhysAddr::new(4096), 128)
        );
    }

    #[test]
    fn discard_releases_backing() {
        let mut mem = PhysMem::new();
        mem.fill(PhysAddr::new(0), 4096 * 4, 0xFF);
        assert_eq!(mem.backed_frames(), 4);
        mem.discard(PhysAddr::new(0), 4096 * 2);
        assert_eq!(mem.backed_frames(), 2);
        assert_eq!(mem.read_u8(PhysAddr::new(0)), 0);
        assert_eq!(mem.read_u8(PhysAddr::new(4096 * 2)), 0xFF);
    }

    #[test]
    fn zero_len_and_self_copy_are_noops() {
        let mut mem = PhysMem::new();
        mem.fill(PhysAddr::new(0), 16, 7);
        mem.copy(PhysAddr::new(0), PhysAddr::new(0), 16);
        mem.copy(PhysAddr::new(0), PhysAddr::new(64), 0);
        assert_eq!(mem.read_u8(PhysAddr::new(64)), 0);
        assert_eq!(mem.read_u8(PhysAddr::new(0)), 7);
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(PhysAddr::new(0xABC).to_string(), "0xabc");
        assert_eq!(format!("{:x}", PhysAddr::new(0xABC)), "abc");
    }
}
