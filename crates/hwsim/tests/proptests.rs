//! Property-based tests for the hardware simulator: event ordering in
//! the DES, byte conservation in the flow network, and chain-manager
//! descriptor accounting.

use memif_hwsim::dma::ChainManager;
use memif_hwsim::{EventWorld, FlowNet, Sim, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Events always execute in (time, insertion) order, regardless of
    /// the order they were scheduled in.
    #[test]
    fn des_executes_in_time_order(times in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        struct W {
            fired: Vec<u64>,
        }
        impl EventWorld for W {
            type Event = u64;
            fn dispatch(&mut self, sim: &mut Sim<Self>, t: u64) {
                assert_eq!(sim.now().as_ns(), t, "event fires at its scheduled instant");
                self.fired.push(t);
            }
        }
        let mut sim: Sim<W> = Sim::new();
        let mut w = W { fired: Vec::new() };
        for &t in &times {
            sim.schedule_at(SimTime::from_ns(t), t);
        }
        sim.run(&mut w);
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&w.fired, &sorted, "stable time order");
        prop_assert_eq!(sim.executed(), times.len() as u64);
    }

    /// Cancelling a random subset removes exactly those events.
    #[test]
    fn des_cancellation_is_exact(
        times in proptest::collection::vec(0u64..1_000, 1..60),
        cancel_mask in proptest::collection::vec(any::<bool>(), 60),
    ) {
        struct W {
            fired: Vec<usize>,
        }
        impl EventWorld for W {
            type Event = usize;
            fn dispatch(&mut self, _sim: &mut Sim<Self>, i: usize) {
                self.fired.push(i);
            }
        }
        let mut sim: Sim<W> = Sim::new();
        let mut w = W { fired: Vec::new() };
        let ids: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| sim.schedule_at(SimTime::from_ns(t), i))
            .collect();
        let mut expect: Vec<(u64, usize)> = Vec::new();
        for (i, id) in ids.iter().enumerate() {
            if cancel_mask[i] {
                sim.cancel(*id);
            } else {
                expect.push((times[i], i));
            }
        }
        sim.run(&mut w);
        expect.sort_unstable();
        let expect_order: Vec<usize> = expect.into_iter().map(|(_, i)| i).collect();
        prop_assert_eq!(w.fired, expect_order);
    }

    /// The fluid flow network conserves bytes: whatever a flow was
    /// created with is exactly what gets delivered by its completion
    /// (within the ±1-ns rounding of completion times), and resource
    /// sharing never exceeds capacity.
    #[test]
    fn flownet_conserves_bytes(
        flows in proptest::collection::vec((1u64..1_000_000, 1u32..50), 1..20),
    ) {
        let mut net = FlowNet::new();
        let r = net.add_resource("bus", 4.0);
        let mut now = SimTime::ZERO;
        let mut expected_total = 0f64;
        // Stagger the starts.
        for (i, &(bytes, gap)) in flows.iter().enumerate() {
            net.start(now, &[r], bytes, 100.0);
            expected_total += bytes as f64;
            now += memif_hwsim::SimDuration::from_ns(u64::from(gap) * 100);
            let _ = i;
        }
        // Drain to completion.
        let mut guard = 0;
        while let Some(t) = net.next_completion(now) {
            now = t.max(now);
            net.take_finished(now);
            guard += 1;
            prop_assert!(guard < 10_000, "flow drain diverged");
        }
        prop_assert_eq!(net.active(), 0);
        let delivered = net.delivered_bytes(r);
        // Each completion can over-deliver at most (n_flows) bytes due to
        // ceil-rounding of its completion instant.
        let slack = flows.len() as f64 * flows.len() as f64 + 8.0;
        prop_assert!(
            (delivered - expected_total).abs() <= slack,
            "delivered {delivered} vs expected {expected_total}"
        );
        // Aggregate rate never exceeded capacity: delivered/elapsed <= 4.0.
        if now > SimTime::ZERO {
            let rate = delivered / now.as_ns() as f64;
            prop_assert!(rate <= 4.0 + 1e-6, "rate {rate} exceeds capacity");
        }
    }

    /// Chain-manager accounting: descriptors are conserved across any
    /// plan/release sequence, plans never hand out overlapping
    /// descriptors concurrently, and reuse never exceeds what was
    /// previously configured.
    #[test]
    fn chain_manager_conserves_descriptors(
        ops in proptest::collection::vec((1usize..40, prop_oneof![Just(4096u64), Just(65536u64)], any::<bool>()), 1..60),
    ) {
        let pool = 128;
        let mut m = ChainManager::new(pool);
        let mut busy: Vec<(memif_hwsim::dma::ChainId, Vec<u16>)> = Vec::new();
        let mut busy_descs = 0usize;

        for (n, per, release_one) in ops {
            if release_one {
                if let Some((chain, descs)) = busy.pop() {
                    m.release(chain);
                    busy_descs -= descs.len();
                }
                continue;
            }
            match m.plan(n, per) {
                Ok(plan) => {
                    let descs: Vec<u16> = plan.descriptors().collect();
                    prop_assert_eq!(descs.len(), n);
                    // No overlap with any concurrently busy chain.
                    for (_, other) in &busy {
                        for d in &descs {
                            prop_assert!(!other.contains(d), "descriptor {d} double-booked");
                        }
                    }
                    // No duplicates within the plan.
                    let mut sorted = descs.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    prop_assert_eq!(sorted.len(), n);
                    busy_descs += n;
                    prop_assert!(busy_descs <= pool, "over-committed the PaRAM");
                    busy.push((plan.chain, descs));
                }
                Err(_) => {
                    // Legal only when the pool genuinely cannot serve n.
                    prop_assert!(
                        busy_descs + n > pool,
                        "spurious failure: {busy_descs} busy, asked {n}, pool {pool}"
                    );
                }
            }
        }
    }
}
