//! Race handling demonstration: proceed-and-fail vs proceed-and-recover
//! (paper §5.2).
//!
//! A migration is submitted and the application touches the region while
//! the DMA transfer is still in flight. Under the default
//! *proceed-and-fail* policy the driver detects the race at Release time
//! (the young-bit CAS fails) and delivers a SEGFAULT-equivalent failure.
//! Under *proceed-and-recover* the racing write traps, the migration is
//! aborted with the original mapping restored, and the write survives.
//!
//! Run with: `cargo run --example race_detection`

use memif::{
    Memif, MemifConfig, MoveSpec, NodeId, PageSize, RaceMode, Sim, SimEvent, SimTime, SpaceId,
    System,
};
use memif_mm::AccessKind;

fn main() {
    println!("--- proceed and fail (default) ---");
    proceed_and_fail();
    println!("\n--- proceed and recover ---");
    proceed_and_recover();
}

fn proceed_and_fail() {
    let mut sys = System::keystone_ii();
    let mut sim = Sim::new();
    let space = sys.new_space();
    let memif = Memif::open(&mut sys, space, MemifConfig::default()).expect("open");
    let region = sys
        .mmap(space, 8, PageSize::Small4K, NodeId(0))
        .expect("map");

    memif
        .submit(
            &mut sys,
            &mut sim,
            MoveSpec::migrate(region, 8, PageSize::Small4K, NodeId(1)),
        )
        .expect("submit");
    println!("migration submitted; application reads the region mid-flight...");

    // The racing access: reading a migrating page clears the young bit
    // of its semi-final PTE.
    sim.schedule_at(
        SimTime::from_ns(500),
        SimEvent::call(move |sys: &mut System, _| {
            sys.space_mut(SpaceId(0))
                .access(region, AccessKind::Read)
                .expect("reads proceed");
            println!("  [app] read the first page during the DMA window");
        }),
    );
    sim.run(&mut sys);

    let c = memif
        .retrieve_completed(&mut sys)
        .expect("retrieve")
        .expect("notified");
    println!(
        "completion: raced = {} — the driver treats the race as a program error\n\
         and the application receives the equivalent of a SEGFAULT",
        c.status.is_race()
    );
    let stats = &sys.device(memif.device()).unwrap().stats;
    println!(
        "races detected on {} page(s) of 8 (only the touched page failed its CAS)",
        stats.races_detected
    );
    assert!(c.status.is_race());
}

fn proceed_and_recover() {
    let config = MemifConfig {
        race_mode: RaceMode::DetectRecover,
        ..MemifConfig::default()
    };
    let mut sys = System::keystone_ii();
    let mut sim = Sim::new();
    let space = sys.new_space();
    let memif = Memif::open(&mut sys, space, config).expect("open");
    let region = sys
        .mmap(space, 8, PageSize::Small4K, NodeId(0))
        .expect("map");
    sys.write_user(space, region, &vec![0xAB; 8 * 4096])
        .expect("populate");

    memif
        .submit(
            &mut sys,
            &mut sim,
            MoveSpec::migrate(region, 8, PageSize::Small4K, NodeId(1)),
        )
        .expect("submit");
    println!("migration submitted; application *writes* the region mid-flight...");

    sim.schedule_at(
        SimTime::from_ns(500),
        SimEvent::call(move |sys: &mut System, sim| {
            // The store traps on the write-watched page; the fault handler
            // aborts the migration and the store retries successfully.
            sys.cpu_write(sim, SpaceId(0), region.offset(64), &[0xCD])
                .expect("write preserved");
            println!("  [app] store trapped, migration aborted, store retried and landed");
        }),
    );
    sim.run(&mut sys);

    let c = memif
        .retrieve_completed(&mut sys)
        .expect("retrieve")
        .expect("notified");
    println!("completion: aborted = {}", c.status.is_aborted());

    // The mapping is back on the slow node with the write visible.
    let pa = sys.space(space).translate(region).expect("mapped");
    let mut byte = [0u8];
    sys.read_user(space, region.offset(64), &mut byte)
        .expect("read");
    println!(
        "region still on {} with the racing write preserved (byte = {:#x})",
        sys.node_of(pa).unwrap(),
        byte[0]
    );
    assert!(c.status.is_aborted());
    assert_eq!(byte[0], 0xCD);
    assert_eq!(sys.node_of(pa), Some(NodeId(0)));
}
