//! The paper's case study (§6.6): STREAM and StreamCluster kernels on
//! the mini prefetch-buffer runtime, with and without memif.
//!
//! Run with: `cargo run --example streaming`

use memif::{Memif, MemifConfig, Sim, System};
use memif_runtime::{Placement, StreamConfig, StreamRuntime};
use memif_workloads::table4_kernels;

fn main() {
    println!("Streaming workloads on the mini runtime (64 MiB input each):\n");
    println!(
        "{:<22} {:>10} {:>10} {:>8} {:>10}",
        "kernel", "linux MB/s", "memif MB/s", "gain", "fallback"
    );

    for kernel in table4_kernels() {
        let mut results = Vec::new();
        for placement in [Placement::SlowOnly, Placement::MemifPrefetch] {
            let mut sys = System::keystone_ii();
            let mut sim = Sim::new();
            let space = sys.new_space();
            let memif = match placement {
                Placement::MemifPrefetch => {
                    Some(Memif::open(&mut sys, space, MemifConfig::default()).expect("open"))
                }
                Placement::SlowOnly => None,
            };
            let config = StreamConfig {
                placement,
                total_input: 64 << 20,
                ..StreamConfig::default()
            };
            let rt =
                StreamRuntime::launch(&mut sys, &mut sim, space, memif, config, kernel.clone());
            sim.run(&mut sys);
            results.push(rt.report());
        }
        let (linux, memif_run) = (results[0], results[1]);
        println!(
            "{:<22} {:>10.1} {:>10.1} {:>+7.1}% {:>9.0}%",
            kernel.name,
            linux.traffic_gbps * 1000.0,
            memif_run.traffic_gbps * 1000.0,
            (memif_run.traffic_gbps / linux.traffic_gbps - 1.0) * 100.0,
            memif_run.fallback_bytes as f64 / memif_run.input_bytes as f64 * 100.0,
        );
    }

    println!(
        "\nThe runtime fills an array of fast-memory buffers with asynchronous memif\n\
         replications; compute consumes whichever buffer is ready and falls back to\n\
         slow memory when none is. Paper numbers (Table 4): pgain 1440->1778 (+23.5%),\n\
         triad 2384->3184 (+33.6%), add 2390->3187 (+33.3%)."
    );
}
