//! Multiple applications sharing the memif service.
//!
//! One memif device is owned by one process; devices keep separate
//! queues and free lists and "are therefore isolated from each other"
//! (§4.2) — but they share the DMA engine and the memory buses, whose
//! contention the simulator models. Three tenants stream migrations
//! concurrently; each sees its own completions only, and the aggregate
//! respects the engine's bandwidth.
//!
//! Run with: `cargo run --example multi_tenant`

use memif::{Memif, MemifConfig, MoveSpec, NodeId, PageSize, Sim, SimTime, System};
use std::cell::RefCell;
use std::rc::Rc;

const TENANTS: usize = 3;
const REQUESTS: usize = 24;
const PAGES: u32 = 64; // 256 KiB per request

fn main() {
    let mut sys = System::keystone_ii();
    let mut sim = Sim::new();

    struct Tenant {
        memif: Memif,
        regions: Vec<(memif::VirtAddr, NodeId)>,
        submitted: usize,
        completed: usize,
        last_completion: SimTime,
    }

    let tenants: Vec<Rc<RefCell<Tenant>>> = (0..TENANTS)
        .map(|_| {
            let space = sys.new_space();
            let memif = Memif::open(&mut sys, space, MemifConfig::default()).expect("open");
            let regions = (0..2)
                .map(|_| {
                    (
                        sys.mmap(space, PAGES, PageSize::Small4K, NodeId(0))
                            .expect("map"),
                        NodeId(0),
                    )
                })
                .collect();
            Rc::new(RefCell::new(Tenant {
                memif,
                regions,
                submitted: 0,
                completed: 0,
                last_completion: SimTime::ZERO,
            }))
        })
        .collect();

    // Per-region serialization: a region never has two moves in flight
    // (overlapping moves of the same region are a program error the
    // driver would flag as a race), so each completion re-arms only its
    // own slot, carried in `user_data`.
    fn submit_for_slot(
        t: &Rc<RefCell<Tenant>>,
        slot: usize,
        sys: &mut System,
        sim: &mut Sim<System>,
    ) {
        let (memif, spec) = {
            let mut tt = t.borrow_mut();
            if tt.submitted >= REQUESTS {
                return;
            }
            tt.submitted += 1;
            let (va, node) = tt.regions[slot];
            let target = if node == NodeId(0) {
                NodeId(1)
            } else {
                NodeId(0)
            };
            tt.regions[slot].1 = target;
            (
                tt.memif,
                MoveSpec::migrate(va, PAGES, PageSize::Small4K, target).with_user_data(slot as u64),
            )
        };
        memif.submit(sys, sim, spec).expect("submit");
    }

    fn pump(t: Rc<RefCell<Tenant>>, sys: &mut System, sim: &mut Sim<System>) {
        let memif = t.borrow().memif;
        while let Some(c) = memif.retrieve_completed(sys).expect("retrieve") {
            assert!(c.status.is_ok());
            let mut tt = t.borrow_mut();
            tt.completed += 1;
            tt.last_completion = sim.now();
            drop(tt);
            submit_for_slot(&t, c.user_data as usize, sys, sim);
        }
        if t.borrow().completed < REQUESTS {
            let t2 = Rc::clone(&t);
            memif
                .poll(sys, sim, move |sys, sim| pump(t2, sys, sim))
                .expect("device open");
        }
    }

    // Kick every tenant off with one outstanding request per region.
    for t in &tenants {
        submit_for_slot(t, 0, &mut sys, &mut sim);
        submit_for_slot(t, 1, &mut sys, &mut sim);
        pump(Rc::clone(t), &mut sys, &mut sim);
    }
    sim.run(&mut sys);

    println!("{TENANTS} tenants x {REQUESTS} migrations x {PAGES} pages (ping-pong):\n");
    let total_bytes = (TENANTS * REQUESTS) as u64 * u64::from(PAGES) * 4096;
    let mut end = SimTime::ZERO;
    for (i, t) in tenants.iter().enumerate() {
        let tt = t.borrow();
        assert_eq!(tt.completed, REQUESTS, "tenant {i} finished");
        let dev = sys.device(tt.memif.device()).unwrap();
        println!(
            "  tenant {i}: {} completed, {} ioctls, finished at {:.2} ms",
            dev.stats.completed,
            dev.stats.ioctls,
            tt.last_completion.as_ns() as f64 / 1e6
        );
        end = end.max(tt.last_completion);
    }
    let agg = total_bytes as f64 / end.as_ns() as f64;
    println!("\naggregate: {:.2} GB/s across all tenants", agg);
    println!(
        "(bounded by the shared engine at {:.1} GB/s — isolation of queues,\n\
         fair sharing of the hardware)",
        sys.cost.dma_engine_bw_gbps
    );
    assert!(
        agg <= sys.cost.dma_engine_bw_gbps * 1.05,
        "engine bandwidth respected"
    );
}
