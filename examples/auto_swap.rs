//! Automatic fast-memory swap-out with [`FastPool`].
//!
//! The paper's prototype left capacity management to the application
//! (§6.7: "the current memif cannot automatically swap out fast
//! memory"). This example shows the runtime-level manager closing that
//! gap: a job touches regions in a hot loop whose working set exceeds
//! the 6 MiB fast bank, and the pool transparently promotes on use and
//! evicts least-recently-used regions to make room.
//!
//! Run with: `cargo run --example auto_swap`

use memif::{Memif, MemifConfig, NodeId, PageSize, Sim, System};
use memif_runtime::{FastPool, PoolRegion};

const REGIONS: usize = 10; // 10 MiB working set over a 6 MiB bank
const REGION_PAGES: u32 = 256; // 1 MiB each

fn main() {
    let mut sys = System::keystone_ii();
    let mut sim = Sim::new();
    let space = sys.new_space();
    let memif = Memif::open(&mut sys, space, MemifConfig::default()).expect("open");
    let pool = FastPool::new(&sys, memif, 512 << 10); // 512 KiB headroom

    let regions: Vec<PoolRegion> = (0..REGIONS)
        .map(|i| {
            let vaddr = sys
                .mmap(space, REGION_PAGES, PageSize::Small4K, NodeId(0))
                .expect("map");
            sys.write_user(space, vaddr, &vec![i as u8; 1 << 20])
                .expect("populate");
            PoolRegion {
                space,
                vaddr,
                pages: REGION_PAGES,
                page_size: PageSize::Small4K,
            }
        })
        .collect();

    // An access pattern with locality: sweep the working set three times,
    // but re-touch a small hot set in between so it stays resident.
    let hot = &regions[..2];
    for round in 0..3 {
        for (i, r) in regions.iter().enumerate() {
            pool.promote(&mut sys, &mut sim, *r);
            sim.run(&mut sys);
            for h in hot {
                pool.touch(*h);
            }
            let _ = i;
        }
        println!(
            "round {}: resident {} MiB, stats {:?}",
            round + 1,
            pool.resident_bytes() >> 20,
            pool.stats()
        );
    }

    // The hot set survived every sweep; cold regions rotated through.
    for (i, h) in hot.iter().enumerate() {
        assert!(pool.is_resident(h), "hot region {i} stayed resident");
        let pa = sys.space(space).translate(h.vaddr).unwrap();
        assert_eq!(sys.node_of(pa), Some(NodeId(1)));
    }
    // All data intact after all the automatic migrations.
    for (i, r) in regions.iter().enumerate() {
        let mut buf = vec![0u8; 4096];
        sys.read_user(space, r.vaddr, &mut buf).expect("read");
        assert!(buf.iter().all(|&b| b == i as u8), "region {i} intact");
    }
    let s = pool.stats();
    println!(
        "\n{} promotions, {} automatic evictions over a {} MiB working set in a 6 MiB bank;",
        s.promotions, s.evictions, REGIONS
    );
    println!("the hot set never left fast memory — LRU + touch() did the placement work.");
}
