//! Quickstart: the Figure 2 flow of the paper, end to end.
//!
//! Opens a memif instance, submits an asynchronous replication and a
//! migration, sleeps in `poll()` until completions arrive, retrieves
//! them, and verifies the bytes actually moved.
//!
//! Run with: `cargo run --example quickstart`

use memif::{Memif, MemifConfig, MoveSpec, NodeId, PageSize, Sim, System};

fn main() {
    // A simulated TI KeyStone II: node 0 = 8 GB DDR3 @ 6.2 GB/s,
    // node 1 = 6 MB on-chip SRAM @ 24 GB/s, EDMA3-style DMA engine.
    let mut sys = System::keystone_ii();
    let mut sim = Sim::new();
    let process = sys.new_space();

    // int memfd = MemifOpen("/dev/memif0")
    let memif = Memif::open(&mut sys, process, MemifConfig::default()).expect("open memif");

    // Two anonymous regions: a 64 KiB source on the slow node and a
    // destination on the fast node.
    let src = sys
        .mmap(process, 16, PageSize::Small4K, NodeId(0))
        .expect("map source");
    let dst = sys
        .mmap(process, 16, PageSize::Small4K, NodeId(1))
        .expect("map destination");
    let payload: Vec<u8> = (0..16 * 4096u32).map(|i| (i % 251) as u8).collect();
    sys.write_user(process, src, &payload)
        .expect("populate source");

    // SubmitRequest(req): non-blocking; the library decides whether a
    // kick-start ioctl is needed (it is, for the first request).
    let (rep_id, cpu) = memif
        .submit(
            &mut sys,
            &mut sim,
            MoveSpec::replicate(src, dst, 16, PageSize::Small4K),
        )
        .expect("submit replication");
    println!("submitted replication {rep_id:?} (app CPU: {cpu})");

    // A migration of the source region itself onto the fast node.
    let (mig_id, _) = memif
        .submit(
            &mut sys,
            &mut sim,
            MoveSpec::migrate(src, 16, PageSize::Small4K, NodeId(1)),
        )
        .expect("submit migration");
    println!("submitted migration  {mig_id:?} (no syscall: kernel worker is active)");

    // poll(fdset): sleep until notifications arrive, like a network
    // server waiting for I/O events.
    let polled = memif.poll(&mut sys, &mut sim, move |sys, sim| {
        println!("woke from poll() at {}", sim.now());
        while let Some(c) = memif.retrieve_completed(sys).expect("retrieve") {
            println!(
                "  completion: req {:?} ({:?}) {} bytes, ok = {}",
                c.req_id,
                c.kind,
                c.bytes,
                c.status.is_ok()
            );
        }
    });
    polled.expect("device open");
    sim.run(&mut sys);

    // Verify: the destination holds the payload, and the source region's
    // backing pages now live on the fast node with contents intact.
    let mut copied = vec![0u8; payload.len()];
    sys.read_user(process, dst, &mut copied)
        .expect("read destination");
    assert_eq!(copied, payload, "replication copied the bytes");

    let phys = sys.space(process).translate(src).expect("still mapped");
    assert_eq!(
        sys.node_of(phys),
        Some(NodeId(1)),
        "migration moved the backing"
    );
    let mut migrated = vec![0u8; payload.len()];
    sys.read_user(process, src, &mut migrated)
        .expect("read migrated region");
    assert_eq!(migrated, payload, "migration preserved the data");

    let stats = &sys.device(memif.device()).unwrap().stats;
    println!(
        "\ndone: {} requests completed with {} syscall(s), {} interrupt(s), {} polled",
        stats.completed, stats.ioctls, stats.interrupts, stats.polled
    );
    memif.close(&mut sys).expect("close");
}
