//! Application-guided hot-region migration.
//!
//! The paper's driving vision (§1, §2.1): the *user* knows which data is
//! about to get hot and moves it proactively — something transparent,
//! reactive systems cannot do. This example models a phased analytics
//! job: each phase scans one region of a large dataset many times. With
//! memif, the application migrates the *next* phase's region into fast
//! memory while the current phase computes — prefetching at region
//! granularity, overlapping the move with compute.
//!
//! Run with: `cargo run --example hot_region_migration`

use memif::{
    Memif, MemifConfig, MoveSpec, NodeId, PageSize, Sim, SimDuration, SimEvent, SimTime, System,
};
use std::cell::RefCell;
use std::rc::Rc;

const PHASES: usize = 6;
const REGION_PAGES: u32 = 256; // 1 MiB per phase region
const PASSES: u64 = 12; // scans per phase

/// Time for one phase's compute: PASSES scans of the region at the CPU
/// streaming bandwidth of whichever node backs it.
fn phase_compute_time(sys: &System, space: memif::SpaceId, region: memif::VirtAddr) -> SimDuration {
    let pa = sys.space(space).translate(region).expect("mapped");
    let on_fast = sys.node_of(pa) == Some(NodeId(1));
    let bw = if on_fast {
        sys.cost.cpu_stream_fast_gbps
    } else {
        sys.cost.cpu_stream_slow_gbps
    };
    let bytes = u64::from(REGION_PAGES) * 4096 * PASSES;
    SimDuration::for_bytes(bytes, bw)
}

fn run(proactive: bool) -> SimTime {
    let mut sys = System::keystone_ii();
    let mut sim = Sim::new();
    let space = sys.new_space();
    let memif = Memif::open(&mut sys, space, MemifConfig::default()).expect("open");

    let regions: Vec<_> = (0..PHASES)
        .map(|_| {
            sys.mmap(space, REGION_PAGES, PageSize::Small4K, NodeId(0))
                .expect("map")
        })
        .collect();

    let finished = Rc::new(RefCell::new(SimTime::ZERO));

    // The phase driver: compute on region p; before starting, kick off
    // the migration of region p+1 (proactive mode only). Fast memory
    // only fits ~1.5 regions, so the previous region is migrated back
    // out first — exactly the explicit capacity management the paper
    // argues users can do well.
    #[allow(clippy::too_many_arguments)]
    fn phase(
        p: usize,
        regions: Rc<Vec<memif::VirtAddr>>,
        memif: Memif,
        space: memif::SpaceId,
        proactive: bool,
        finished: Rc<RefCell<SimTime>>,
        sys: &mut System,
        sim: &mut Sim<System>,
    ) {
        if p == regions.len() {
            *finished.borrow_mut() = sim.now();
            return;
        }
        if proactive {
            // Evict the previous phase's region, then prefetch the next.
            if p > 0 {
                memif
                    .submit(
                        sys,
                        sim,
                        MoveSpec::migrate(
                            regions[p - 1],
                            REGION_PAGES,
                            PageSize::Small4K,
                            NodeId(0),
                        ),
                    )
                    .expect("evict");
            }
            if p + 1 < regions.len() {
                memif
                    .submit(
                        sys,
                        sim,
                        MoveSpec::migrate(
                            regions[p + 1],
                            REGION_PAGES,
                            PageSize::Small4K,
                            NodeId(1),
                        ),
                    )
                    .expect("prefetch");
            }
            // Drain notifications in the background so slots recycle.
            memif
                .poll(sys, sim, move |sys, _| {
                    while memif.retrieve_completed(sys).expect("retrieve").is_some() {}
                })
                .expect("device open");
        }
        let compute = phase_compute_time(sys, space, regions[p]);
        sim.schedule_after(
            compute,
            SimEvent::call(move |sys: &mut System, sim| {
                phase(p + 1, regions, memif, space, proactive, finished, sys, sim);
            }),
        );
    }

    // Warm start: phase 0's region is prefetched before compute begins
    // in proactive mode (the first move is not overlapped).
    let regions = Rc::new(regions);
    if proactive {
        memif
            .submit(
                &mut sys,
                &mut sim,
                MoveSpec::migrate(regions[0], REGION_PAGES, PageSize::Small4K, NodeId(1)),
            )
            .expect("initial prefetch");
    }
    let start_delay = if proactive {
        SimDuration::from_ms(1)
    } else {
        SimDuration::ZERO
    };
    let f2 = Rc::clone(&finished);
    let r2 = Rc::clone(&regions);
    sim.schedule_after(
        start_delay,
        SimEvent::call(move |sys: &mut System, sim| {
            phase(0, r2, memif, space, proactive, f2, sys, sim);
        }),
    );
    sim.run(&mut sys);
    let t = *finished.borrow();
    assert!(t > SimTime::ZERO, "all phases completed");
    t
}

fn main() {
    let reactive = run(false);
    let proactive = run(true);
    println!("phased scan job: {PHASES} phases x {REGION_PAGES} pages x {PASSES} passes");
    println!(
        "  all data in slow memory : {:>10.2} ms",
        reactive.as_ns() as f64 / 1e6
    );
    println!(
        "  app-guided migration    : {:>10.2} ms",
        proactive.as_ns() as f64 / 1e6
    );
    println!(
        "  speedup                 : {:>10.2}x",
        reactive.as_ns() as f64 / proactive.as_ns() as f64
    );
    println!(
        "\nThe application migrates each upcoming region into the 6 MiB fast bank\n\
         while computing on the current one, and evicts it afterwards — the\n\
         explicit, knowledge-driven management memif is built to enable."
    );
    assert!(
        proactive < reactive,
        "proactive migration must win on this workload"
    );
}
