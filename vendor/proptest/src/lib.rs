//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so the workspace
//! vendors a small property-testing core with the same surface the
//! test suites use: `proptest!`, `prop_oneof!`, `prop_assert*`,
//! `any::<T>()`, `Just`, integer-range strategies, tuple strategies,
//! `.prop_map`, and `collection::vec`. Cases are generated from a
//! deterministic per-test seed; there is no shrinking — a failing case
//! panics with the assertion message, which is enough for CI.

pub mod test_runner {
    //! Configuration and the deterministic case generator.

    /// Run configuration; only `cases` is consulted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 stream feeding every strategy.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator for one test case, derived from the test
        /// identity and the case index so reruns are reproducible.
        #[must_use]
        pub fn deterministic(test_seed: u64, case: u32) -> Self {
            TestRng {
                state: test_seed ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// The next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform index below `n` (`n > 0`).
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }

    /// FNV-1a over the test identity, for seeding.
    #[must_use]
    pub fn test_seed(module: &str, name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in module.bytes().chain([b':']).chain(name.bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Self::Value` from a random stream.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Fn(&mut TestRng) -> T>>,
    }

    impl<T> Union<T> {
        /// Builds a union from pre-boxed alternatives.
        #[must_use]
        pub fn new(options: Vec<Box<dyn Fn(&mut TestRng) -> T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! of nothing");
            Union { options }
        }

        /// Boxes one alternative for [`Union::new`].
        pub fn case<S>(s: S) -> Box<dyn Fn(&mut TestRng) -> T>
        where
            S: Strategy<Value = T> + 'static,
        {
            Box::new(move |rng| s.generate(rng))
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len());
            (self.options[idx])(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let r = (rng.next_u64() as u128) % span;
                    (self.start as i128 + r as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let r = (rng.next_u64() as u128) % span;
                    (lo as i128 + r as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! `any::<T>()` support for primitive types.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for generated collections (inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length in `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() % span as u64) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// A vector strategy over `elem` with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! The glob-import surface test files use.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident ($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let seed = $crate::test_runner::test_seed(module_path!(), stringify!($name));
                for case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(seed, case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Uniform choice between the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Union::case($strat)),+
        ])
    };
}

/// `assert!` under a property (no shrinking; panics immediately).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a property (no shrinking; panics immediately).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, PartialEq)]
    enum Op {
        A(u8),
        B(usize, bool),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            any::<u8>().prop_map(Op::A),
            ((0usize..8), any::<bool>()).prop_map(|(i, f)| Op::B(i, f)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn generated_values_respect_bounds(
            ops in crate::collection::vec(op(), 1..20),
            x in 3u64..9,
        ) {
            prop_assert!(!ops.is_empty() && ops.len() < 20);
            prop_assert!((3..9).contains(&x));
            for o in &ops {
                if let Op::B(i, _) = o {
                    prop_assert!(*i < 8);
                }
            }
        }
    }

    #[test]
    fn deterministic_per_case() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = op();
        let a: Vec<_> = (0..10)
            .map(|c| s.generate(&mut TestRng::deterministic(42, c)))
            .collect();
        let b: Vec<_> = (0..10)
            .map(|c| s.generate(&mut TestRng::deterministic(42, c)))
            .collect();
        assert_eq!(a, b);
    }
}
