//! Offline stand-in for `rand`.
//!
//! The workspace only needs a deterministic, seedable generator with
//! `random_range` over numeric ranges and `random_bool`. This vendored
//! stub provides exactly that on top of SplitMix64 — no registry
//! access is available in the build environment, and the callers
//! (workload generators, test data) need reproducibility, not
//! cryptographic quality.

use std::ops::{Range, RangeInclusive};

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers available on every generator.
pub trait RngExt {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range`.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p.clamp(0.0, 1.0)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample.
    fn sample<G: RngExt>(self, rng: &mut G) -> Self::Output;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange for Range<f64> {
    type Output = f64;

    fn sample<G: RngExt>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;

    fn sample<G: RngExt>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        // The closed upper bound matters only at f64 resolution; reuse
        // the half-open sampler over the nudged width.
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample<G: RngExt>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;

            fn sample<G: RngExt>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Generator implementations.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Deterministic for a given seed across platforms, which is all
    /// the simulated workloads require.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn seeded_streams_repeat() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(-1e3..1e3);
            assert!((-1e3..1e3).contains(&x));
            let y = rng.random_range(3u64..17);
            assert!((3..17).contains(&y));
            let z = rng.random_range(0.0..=2.5);
            assert!((0.0..=2.5).contains(&z));
        }
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
