//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names and re-exports
//! the no-op derives so `#[derive(Serialize, Deserialize)]` and
//! `use serde::{Deserialize, Serialize}` compile without the real
//! crate. No serialization machinery exists — nothing in this
//! workspace serializes values at run time.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
