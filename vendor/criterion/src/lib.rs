//! Offline stand-in for `criterion`.
//!
//! Supports the subset the workspace benches use — groups,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId`,
//! `iter`, `iter_custom` — with a short timed loop instead of
//! criterion's statistical engine. Good enough to keep `cargo bench`
//! compiling and producing indicative numbers without registry access.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque measurement preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level bench context.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("\n== {} ==", name.into());
        BenchmarkGroup { _c: self }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), &mut f);
        self
    }
}

/// Parameter label for `bench_with_input`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    #[must_use]
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Units-of-work annotation; recorded for the report line only.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the per-iteration work size (report annotation only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), &mut f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    // Warm-up pass, then scale iterations toward ~20ms of work.
    f(&mut b);
    let per_iter = b.elapsed.as_nanos().max(1) / u128::from(b.iters.max(1));
    let target = (20_000_000 / per_iter.max(1)).clamp(1, 100_000) as u64;
    b.iters = target;
    b.elapsed = Duration::ZERO;
    f(&mut b);
    let ns = b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
    println!("{name:<40} {ns:>12.1} ns/iter ({} iters)", b.iters);
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the chosen iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Lets the routine time itself: it receives the iteration count
    /// and returns the measured duration.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.elapsed = routine(self.iters);
    }
}

/// Declares a bench entry point running each target function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.throughput(Throughput::Elements(4));
        g.bench_function("iter", |b| b.iter(|| black_box(2u64) * 2));
        g.bench_with_input(BenchmarkId::new("input", 8), &8u64, |b, &n| {
            b.iter(|| black_box(n) + 1)
        });
        g.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                let start = std::time::Instant::now();
                for _ in 0..iters {
                    black_box(1u64);
                }
                start.elapsed()
            })
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
