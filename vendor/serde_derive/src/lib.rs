//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no registry access, so the workspace
//! vendors a minimal derive that accepts `#[derive(Serialize,
//! Deserialize)]` and expands to nothing. Nothing in this repository
//! actually serializes values; the derives only need to parse.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
