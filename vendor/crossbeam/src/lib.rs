//! Offline stand-in for `crossbeam`.
//!
//! The stress tests only use `crossbeam::scope(|s| s.spawn(...))`;
//! since Rust 1.63 the standard library's `std::thread::scope` covers
//! that, so this vendored shim adapts the crossbeam calling convention
//! (spawn closures receive the scope, `scope` returns a `Result`) to
//! the std implementation.

use std::any::Any;
use std::thread;

/// A scope handle mirroring `crossbeam::thread::Scope`.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

/// A joinable handle to a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread and returns its result, `Err` on panic.
    ///
    /// # Errors
    ///
    /// Returns the boxed panic payload if the thread panicked.
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread; the closure receives this scope so it
    /// can spawn further threads, matching crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&scope)),
        }
    }
}

/// Runs `f` with a thread scope; all spawned threads are joined before
/// this returns. Panics in unjoined children propagate, so the `Ok`
/// wrapper mirrors crossbeam's API without a separate error path.
///
/// # Errors
///
/// Never returns `Err`; the `Result` exists for crossbeam
/// call-compatibility (callers `.unwrap()` it).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scoped_threads_join_and_return() {
        let counter = AtomicU64::new(0);
        let sum = super::scope(|s| {
            let handles: Vec<_> = (0..4u64)
                .map(|i| {
                    s.spawn(move |_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                        i * 10
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(sum, 60);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }
}
